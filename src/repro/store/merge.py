"""Merging and syncing content-addressed stores.

Because every result row is keyed by its scenario's content hash and
written first-writer-wins in one canonical byte shape, two stores are
trivially mergeable: copy the rows the destination lacks, verify that
rows both sides hold are *byte-identical*, and refuse loudly when they
are not (:class:`~repro.errors.StoreError` -- diverging bytes under one
content key mean corruption or non-determinism, never a policy choice).

:func:`merge_stores` copies raw rows (exact canonical bytes *and*
provenance columns) from a source store into a destination;
:func:`sync_stores` runs the merge both ways so two stores converge on
the union.  Both accept any mix of plain :class:`~repro.store.db.ResultStore`
files and :class:`~repro.store.shard.ShardedResultStore` directories --
routing is just :meth:`put_raw` on the destination.

Campaign and study *journals* merge with the same semantics: a name
both sides know must journal identical content (keys for campaigns,
``spec_key`` + keys for studies), otherwise :class:`StoreError`.  The
``jobs`` table never merges -- claim state (who is running what, with
which heartbeat) is meaningful only inside one deployment.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Tuple

from repro.errors import StoreError
from repro.obs.metrics import metrics as _obs_metrics
from repro.obs.state import STATE as _OBS
from repro.obs.trace import span
from repro.store.db import ResultStore

#: Store-merge telemetry: rows moved (or found identical) per merge.
_MERGE_ROWS = _obs_metrics().counter(
    "repro_store_merge_rows_total",
    "Result rows handled by store merges, by outcome",
    ("outcome",),
)


@dataclass(frozen=True)
class MergeReport:
    """What one :func:`merge_stores` call did."""

    source: str
    dest: str
    imported: int
    identical: int
    campaigns_imported: int
    campaigns_shared: int
    studies_imported: int
    studies_shared: int

    def summary(self) -> str:
        """One-line human-readable report."""
        parts = [
            f"merged {self.source} -> {self.dest}: "
            f"{self.imported} row(s) imported, "
            f"{self.identical} already present"
        ]
        if self.campaigns_imported or self.campaigns_shared:
            parts.append(
                f"campaigns: {self.campaigns_imported} imported, "
                f"{self.campaigns_shared} shared"
            )
        if self.studies_imported or self.studies_shared:
            parts.append(
                f"studies: {self.studies_imported} imported, "
                f"{self.studies_shared} shared"
            )
        return "; ".join(parts)


def merge_stores(
    dest: ResultStore, source: ResultStore, journals: bool = True
) -> MergeReport:
    """Import every row of ``source`` into ``dest``; return the tally.

    Result rows copy raw (byte- and provenance-preserving); colliding
    keys must match byte-for-byte or the merge dies with
    :class:`StoreError` naming both stores.  ``journals=False`` limits
    the merge to result rows (what partitioned campaign execution wants
    -- the canonical campaign journal already lives in the destination
    and the partitions' scratch journals should not follow it there).

    Idempotent and kill-safe: every imported row is durable the moment
    its transaction commits, and re-running the merge just counts the
    survivors as already-present.
    """
    source_label = _store_label(source)
    imported = identical = 0
    with span("store.merge", source=source_label, dest=_store_label(dest)) as sp:
        for row in source.iter_raw():
            if dest.put_raw(row, source=source_label):
                imported += 1
            else:
                identical += 1
        campaigns = studies = shared_campaigns = shared_studies = 0
        if journals:
            campaigns, shared_campaigns = _merge_campaigns(dest, source)
            studies, shared_studies = _merge_studies(dest, source)
        sp.annotate(imported=imported, identical=identical)
        if _OBS.metrics_on:
            if imported:
                _MERGE_ROWS.inc(imported, outcome="imported")
            if identical:
                _MERGE_ROWS.inc(identical, outcome="identical")
    return MergeReport(
        source=source_label,
        dest=_store_label(dest),
        imported=imported,
        identical=identical,
        campaigns_imported=campaigns,
        campaigns_shared=shared_campaigns,
        studies_imported=studies,
        studies_shared=shared_studies,
    )


def sync_stores(
    a: ResultStore, b: ResultStore, journals: bool = True
) -> Tuple[MergeReport, MergeReport]:
    """Merge both ways so ``a`` and ``b`` converge on the union."""
    return merge_stores(a, b, journals=journals), merge_stores(
        b, a, journals=journals
    )


def _store_label(store: ResultStore) -> str:
    return str(getattr(store, "root", store.path))


def _merge_campaigns(
    dest: ResultStore, source: ResultStore
) -> Tuple[int, int]:
    """Copy campaign journals ``source`` has and ``dest`` lacks."""
    imported = shared = 0
    src_conn = source._conn()
    for name, src, total, created_at, created_unix in src_conn.execute(
        "SELECT name, source, total, created_at, created_unix "
        "FROM campaigns ORDER BY name"
    ).fetchall():
        rows = src_conn.execute(
            "SELECT idx, key, scenario FROM campaign_scenarios "
            "WHERE campaign=? ORDER BY idx",
            (name,),
        ).fetchall()
        conn = dest._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            existing = conn.execute(
                "SELECT 1 FROM campaigns WHERE name=?", (name,)
            ).fetchone()
            if existing is None:
                conn.execute(
                    "INSERT INTO campaigns(name, source, total, created_at, "
                    "created_unix) VALUES (?, ?, ?, ?, ?)",
                    (name, src, total, created_at, created_unix),
                )
                conn.executemany(
                    "INSERT INTO campaign_scenarios(campaign, idx, key, "
                    "scenario) VALUES (?, ?, ?, ?)",
                    [(name, idx, key, doc) for idx, key, doc in rows],
                )
                imported += 1
                journaled = None
            else:
                journaled = conn.execute(
                    "SELECT idx, key, scenario FROM campaign_scenarios "
                    "WHERE campaign=? ORDER BY idx",
                    (name,),
                ).fetchall()
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if journaled is not None:
            if [tuple(r) for r in journaled] != [tuple(r) for r in rows]:
                raise StoreError(
                    f"campaign {name!r} exists in both "
                    f"{_store_label(dest)} and {_store_label(source)} "
                    f"with different journaled scenarios; rename one "
                    f"before merging"
                )
            shared += 1
    return imported, shared


def _merge_studies(dest: ResultStore, source: ResultStore) -> Tuple[int, int]:
    """Copy study journals ``source`` has and ``dest`` lacks."""
    imported = shared = 0
    src_conn = source._conn()
    columns = (
        "name, spec, spec_key, design_name, points, keys, total, "
        "created_at, created_unix"
    )
    for row in src_conn.execute(
        f"SELECT {columns} FROM studies ORDER BY name"
    ).fetchall():
        name, spec_key, keys_doc = row[0], row[2], row[5]
        conn = dest._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            existing = conn.execute(
                "SELECT spec_key, keys FROM studies WHERE name=?", (name,)
            ).fetchone()
            if existing is None:
                conn.execute(
                    f"INSERT INTO studies({columns}) "
                    f"VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    tuple(row),
                )
                imported += 1
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if existing is not None:
            if (existing[0], json.loads(existing[1])) != (
                spec_key,
                json.loads(keys_doc),
            ):
                raise StoreError(
                    f"study {name!r} exists in both {_store_label(dest)} "
                    f"and {_store_label(source)} with a different spec or "
                    f"design; rename one before merging"
                )
            shared += 1
    return imported, shared
