"""Sharded result storage: N per-shard SQLite files, one store API.

A :class:`ShardedResultStore` is a directory of ``shard-00.db ..
shard-NN.db`` files behind the exact :class:`~repro.store.db.ResultStore`
read/write API, so everything built on the store -- ``BatchRunner(store=)``,
campaigns, studies, the job queue and the HTTP service -- works unchanged.

Why shard at all: SQLite allows one writer per *file*.  A single store
file caps aggregate write throughput at one writer's speed no matter how
many processes fan out over it; N shard files are N independent writers.
BENCH_shard quantifies the win (~Nx aggregate write capacity).

Layout
------
- **Result rows** route by cache-key prefix: ``int(key[:8], 16) % N``.
  The key is a SHA-256 hex digest, so the prefix is uniform and every
  process computes the same route with no coordination.
- **Shard 0 is the meta shard.**  The campaign/study journals and the
  ``jobs`` table -- small, coordination-shaped tables -- stay in
  ``shard-00.db``, served by the inherited connection machinery (the
  base class's ``self.path`` points at shard 0).  Only the hot,
  append-mostly ``results`` table is spread out.
- The shard count is recorded in shard 0's ``store_meta`` and
  re-discovered (and validated) on reopen, so
  ``ShardedResultStore(root)`` with no arguments opens an existing
  sharded store correctly and a mismatched explicit count is refused.

Shards are themselves complete, self-describing stores: a single shard
file opens fine as a plain :class:`ResultStore` (that is exactly what
``store merge`` consumes when partitioned workers hand their local
shards back).
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigError, StoreError
from repro.obs.metrics import metrics as _obs_metrics
from repro.obs.state import STATE as _OBS
from repro.scenario import Scenario
from repro.store.db import ResultStore, StoredResult, StoreStats
from repro.system.result import SystemResult

#: Per-shard routing telemetry: one count per routed result operation,
#: labelled with the shard index the key resolved to (balance check).
_SHARD_ROUTE = _obs_metrics().counter(
    "repro_store_shard_route_total",
    "Result operations routed per shard",
    ("shard",),
)
_SHARD_COUNT = _obs_metrics().gauge(
    "repro_store_shards",
    "Shard count of the most recently opened sharded store",
)

#: Shard count used when creating a sharded store without an explicit N.
DEFAULT_SHARDS = 4

#: Maximum sensible shard count (a guard against typo'd huge values).
MAX_SHARDS = 256


def shard_file_name(index: int) -> str:
    """The canonical per-shard file name (``shard-00.db``...)."""
    return f"shard-{index:02d}.db"


def shard_index(key: str, n_shards: int) -> int:
    """Which shard a content key routes to.

    Keys are SHA-256 hex digests, so the first 8 hex digits are a
    uniform 32-bit integer; arbitrary non-hex keys fall back to CRC-32
    of the text so lookups never crash on garbage input.
    """
    try:
        prefix = int(key[:8], 16)
    except ValueError:
        prefix = zlib.crc32(key.encode("utf-8"))
    return prefix % n_shards


class ShardedResultStore(ResultStore):
    """A result store spread over N per-shard SQLite files.

    Parameters
    ----------
    root:
        Directory holding the shard files.  Created if missing (the
        parent must exist, mirroring :class:`ResultStore`); an existing
        sharded root is reopened with its recorded shard count.
    shards:
        Shard count when *creating*; on reopen it is validated against
        the recorded count (``None`` means "whatever the store says").

    Instances are picklable exactly like the base class: workers
    re-open their own per-process connections to every shard.
    """

    def __init__(self, root: Union[str, Path], shards: Optional[int] = None):
        text = str(root)
        if text == ":memory:" or text.startswith("file::memory:"):
            raise ConfigError(
                "the result store must live on disk (an in-memory store "
                "would give every worker its own empty database)"
            )
        self.root = Path(text)
        if shards is not None and not (1 <= int(shards) <= MAX_SHARDS):
            raise ConfigError(
                f"shard count must be in 1..{MAX_SHARDS}, got {shards}"
            )
        if self.root.exists() and not self.root.is_dir():
            raise ConfigError(
                f"sharded store root {text!r} exists but is not a directory "
                f"(a plain single-file store? open it with ResultStore)"
            )
        if not self.root.exists():
            if not self.root.parent.exists():
                raise ConfigError(
                    f"store directory {str(self.root.parent)!r} does not exist"
                )
            self.root.mkdir()
        creating = not (self.root / shard_file_name(0)).exists()
        if creating and any(self.root.iterdir()):
            raise ConfigError(
                f"directory {text!r} is not empty and holds no "
                f"{shard_file_name(0)}; refusing to scatter shards into it"
            )
        # Shard 0 is the meta shard: the inherited machinery (journals,
        # jobs, schema/meta) operates on it via self.path/_conn().
        super().__init__(self.root / shard_file_name(0))
        self.n_shards = self._resolve_shard_count(
            None if shards is None else int(shards), creating
        )
        self._shards: List[ResultStore] = [self]
        for index in range(1, self.n_shards):
            shard = ResultStore(self.root / shard_file_name(index))
            self._mark_shard(shard, index)
            self._shards.append(shard)
        self._mark_shard(self, 0)
        if _OBS.metrics_on:
            _SHARD_COUNT.set(self.n_shards)

    # -- layout bookkeeping ------------------------------------------------------

    def _resolve_shard_count(
        self, requested: Optional[int], creating: bool
    ) -> int:
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT value FROM store_meta WHERE key='shards'"
            ).fetchone()
            if row is None:
                if not creating:
                    conn.execute("ROLLBACK")
                    raise ConfigError(
                        f"{self.path} is a plain single-file store, not a "
                        f"sharded store's meta shard (no shard count recorded)"
                    )
                count = requested if requested is not None else DEFAULT_SHARDS
                conn.execute(
                    "INSERT INTO store_meta(key, value) VALUES ('shards', ?)",
                    (str(count),),
                )
            else:
                count = int(row[0])
            conn.execute("COMMIT")
        except BaseException:
            if conn.in_transaction:
                conn.execute("ROLLBACK")
            raise
        if requested is not None and requested != count:
            raise ConfigError(
                f"sharded store {self.root} has {count} shard(s), "
                f"not the requested {requested}"
            )
        return count

    def _mark_shard(self, shard: ResultStore, index: int) -> None:
        """Make each shard file self-describing (index + total)."""
        conn = shard._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                "INSERT OR IGNORE INTO store_meta(key, value) "
                "VALUES ('shard_index', ?), ('shards', ?)",
                (str(index), str(self.n_shards)),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def shard_paths(self) -> List[Path]:
        """Every shard file, in shard order."""
        return [shard.path for shard in self._shards]

    def _shard_for(self, key: str) -> ResultStore:
        index = shard_index(key, self.n_shards)
        if _OBS.metrics_on:
            _SHARD_ROUTE.inc(shard=str(index))
        return self._shards[index]

    def _group_keys(self, keys: List[str]) -> Dict[int, List[str]]:
        grouped: Dict[int, List[str]] = {}
        for key in keys:
            grouped.setdefault(shard_index(key, self.n_shards), []).append(key)
        return grouped

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        for shard in self._shards[1:]:
            shard.close()
        ResultStore.close(self)

    def __getstate__(self) -> dict:
        return {"root": self.root, "shards": self.n_shards}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["root"], shards=state["shards"])

    def __repr__(self) -> str:
        return f"ShardedResultStore({str(self.root)!r}, shards={self.n_shards})"

    # -- routed result access ----------------------------------------------------

    def put(
        self,
        scenario: Scenario,
        result: SystemResult,
        wall_time_s: float = 0.0,
    ) -> bool:
        shard = self._shard_for(scenario.cache_key())
        if shard is self:
            return ResultStore.put(self, scenario, result, wall_time_s)
        return shard.put(scenario, result, wall_time_s)

    def put_raw(self, row: Tuple, source: str = "") -> bool:
        shard = self._shard_for(str(row[0]) if row else "")
        if shard is self:
            return ResultStore.put_raw(self, row, source)
        return shard.put_raw(row, source)

    def get(self, scenario_or_key: Union[Scenario, str]) -> Optional[SystemResult]:
        key = self._key_of(scenario_or_key)
        shard = self._shard_for(key)
        if shard is self:
            return ResultStore.get(self, key)
        return shard.get(key)

    def get_payload_text(
        self, scenario_or_key: Union[Scenario, str]
    ) -> Optional[str]:
        key = self._key_of(scenario_or_key)
        shard = self._shard_for(key)
        if shard is self:
            return ResultStore.get_payload_text(self, key)
        return shard.get_payload_text(key)

    def get_raw(self, scenario_or_key: Union[Scenario, str]) -> Optional[Tuple]:
        key = self._key_of(scenario_or_key)
        shard = self._shard_for(key)
        if shard is self:
            return ResultStore.get_raw(self, key)
        return shard.get_raw(key)

    def get_scenario(
        self, scenario_or_key: Union[Scenario, str]
    ) -> Optional[Scenario]:
        key = self._key_of(scenario_or_key)
        shard = self._shard_for(key)
        if shard is self:
            return ResultStore.get_scenario(self, key)
        return shard.get_scenario(key)

    def __contains__(self, scenario_or_key: Union[Scenario, str]) -> bool:
        key = self._key_of(scenario_or_key)
        shard = self._shard_for(key)
        if shard is self:
            return ResultStore.__contains__(self, key)
        return key in shard

    # -- fanned-out result access ------------------------------------------------

    def __len__(self) -> int:
        return sum(
            ResultStore.__len__(s) if s is self else len(s)
            for s in self._shards
        )

    def count_keys(self, keys: List[str]) -> int:
        total = 0
        for index, group in self._group_keys(keys).items():
            shard = self._shards[index]
            if shard is self:
                total += ResultStore.count_keys(self, group)
            else:
                total += shard.count_keys(group)
        return total

    def have_keys(self, keys: List[str]) -> set:
        present: set = set()
        for index, group in self._group_keys(keys).items():
            shard = self._shards[index]
            if shard is self:
                present |= ResultStore.have_keys(self, group)
            else:
                present |= shard.have_keys(group)
        return present

    def keys(self) -> List[str]:
        merged: List[str] = []
        for shard in self._shards:
            merged.extend(
                ResultStore.keys(shard) if shard is self else shard.keys()
            )
        merged.sort()
        return merged

    def iter_raw(self) -> Iterator[Tuple]:
        for shard in self._shards:
            iterator = (
                ResultStore.iter_raw(shard)
                if shard is self
                else shard.iter_raw()
            )
            for row in iterator:
                yield row

    def query(self, **filters) -> List[StoredResult]:
        rows: List[StoredResult] = []
        limit = filters.get("limit")
        for shard in self._shards:
            if shard is self:
                rows.extend(ResultStore.query(self, **filters))
            else:
                rows.extend(shard.query(**filters))
        # Re-establish the store-wide deterministic order (ISO-8601
        # timestamps in one timezone sort lexically), then re-apply the
        # limit that each shard applied only locally.
        rows.sort(key=lambda row: (row.created_at, row.key))
        if limit is not None:
            rows = rows[: int(limit)]
        return rows

    # -- maintenance -------------------------------------------------------------

    def stats(self) -> StoreStats:
        per_shard = [
            ResultStore.stats(s) if s is self else s.stats()
            for s in self._shards
        ]
        meta = per_shard[0]

        def _merge_counts(
            pairs: List[Tuple[Tuple[str, int], ...]]
        ) -> Tuple[Tuple[str, int], ...]:
            merged: Dict[str, int] = {}
            for group in pairs:
                for label, count in group:
                    merged[label] = merged.get(label, 0) + count
            return tuple(sorted(merged.items()))

        return StoreStats(
            path=str(self.root),
            n_results=sum(s.n_results for s in per_shard),
            n_campaigns=meta.n_campaigns,
            by_backend=_merge_counts([s.by_backend for s in per_shard]),
            by_family=_merge_counts([s.by_family for s in per_shard]),
            payload_bytes=sum(s.payload_bytes for s in per_shard),
            file_bytes=sum(s.file_bytes for s in per_shard),
            total_wall_time_s=sum(s.total_wall_time_s for s in per_shard),
            oldest=min(
                (s.oldest for s in per_shard if s.oldest), default=None
            ),
            newest=max(
                (s.newest for s in per_shard if s.newest), default=None
            ),
            by_job_status=meta.by_job_status,  # jobs live in the meta shard
            n_shards=self.n_shards,
        )

    def _gc_candidates(
        self,
        older_than_days: Optional[float],
        family: Optional[str],
        orphans: bool,
    ) -> List[str]:
        # The orphans selector references the campaign journal, which
        # lives only in the meta shard -- the per-shard SQL subquery
        # would call every row in shards 1..N-1 an orphan.  Collect the
        # journal's keys once, then filter each shard's time/family
        # matches against it.
        referenced: Optional[set] = None
        if orphans:
            referenced = {
                row[0]
                for row in self._conn().execute(
                    "SELECT key FROM campaign_scenarios"
                )
            }
        candidates: List[str] = []
        for shard in self._shards:
            candidates.extend(
                ResultStore._gc_candidates(shard, older_than_days, family, False)
                if shard is self
                else shard._gc_candidates(older_than_days, family, False)
            )
        if referenced is not None:
            candidates = [key for key in candidates if key not in referenced]
        return candidates

    def _delete_keys(self, keys: List[str]) -> int:
        deleted = 0
        for index, group in self._group_keys(keys).items():
            shard = self._shards[index]
            if shard is self:
                deleted += ResultStore._delete_keys(self, group)
            else:
                deleted += shard._delete_keys(group)
        return deleted


def open_store(
    path: Union[str, Path], shards: Optional[int] = None
) -> ResultStore:
    """Open (or create) whichever store shape ``path`` holds.

    A directory -- existing, or requested via ``shards > 1`` -- is a
    :class:`ShardedResultStore`; anything else is a plain single-file
    :class:`ResultStore`.  This is the one store-opening call the CLI
    and service wiring use, so every command transparently accepts both
    shapes.
    """
    target = Path(str(path))
    if shards is not None:
        if int(shards) > 1:
            return ShardedResultStore(target, shards=int(shards))
        if target.is_dir():
            raise ConfigError(
                f"{str(target)!r} is a sharded store directory; "
                f"it cannot be opened with shards={shards}"
            )
        return ResultStore(target)
    if target.is_dir():
        return ShardedResultStore(target)
    return ResultStore(target)
