"""Named, journaled, crash-safe campaign execution.

A :class:`Campaign` is a named list of scenarios journaled inside a
:class:`~repro.store.db.ResultStore`.  Creating one writes the *intent*
(every scenario, with its seed already resolved, and its content key)
into the store in a single transaction; running one simulates the
scenarios whose keys are not yet in the results table, in bounded
chunks, writing each chunk through to disk before starting the next.

That split is what makes campaigns resumable: completion state is never
tracked separately from the results themselves -- a scenario is done
exactly when its content-addressed result row exists -- so there is no
journal/result consistency to lose.  Kill the process at any point and
``Campaign(store, name).run()`` (or ``repro-wsn campaign resume NAME
--store DB``) picks up with at most one chunk of work repeated, and
**zero** re-simulation of anything already stored.

Scenarios are journaled with concrete seeds (``seed=None`` entries get
:func:`repro.rng.derive_seed`-derived ones at creation time), because a
floating seed would change the content key between runs and defeat
resumption.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.batch import BatchRunner
from repro.errors import ConfigError
from repro.rng import derive_seed
from repro.scenario import Scenario
from repro.store.db import ResultStore, canonical_json
from repro.system.result import SystemResult


@dataclass(frozen=True)
class CampaignStatus:
    """Progress snapshot of one campaign."""

    name: str
    total: int
    done: int
    source: str
    created_at: str

    @property
    def pending(self) -> int:
        return self.total - self.done

    @property
    def complete(self) -> bool:
        return self.done >= self.total

    def summary(self) -> str:
        """One-line progress report."""
        pct = 100.0 * self.done / self.total if self.total else 100.0
        label = f" [{self.source}]" if self.source else ""
        return (
            f"{self.name}{label}: {self.done}/{self.total} done "
            f"({pct:.0f}%), {self.pending} pending"
        )


class Campaign:
    """A journaled scenario list bound to a result store.

    Load an existing campaign with ``Campaign(store, name)``; create a
    new one with :meth:`create`.  ``run()`` simulates whatever is still
    missing and returns the full, input-ordered result list; calling it
    again on a complete campaign costs only store reads.
    """

    def __init__(self, store: ResultStore, name: str):
        if not name:
            raise ConfigError("campaign name must be non-empty")
        self.store = store
        self.name = name
        row = store._conn().execute(
            "SELECT source, total, created_at FROM campaigns WHERE name=?",
            (name,),
        ).fetchone()
        if row is None:
            known = ", ".join(campaign_names(store)) or "(none)"
            raise ConfigError(
                f"unknown campaign {name!r} in {store.path} (known: {known})"
            )
        self.source: str = row[0]
        self.total: int = int(row[1])
        self.created_at: str = row[2]

    # -- creation ---------------------------------------------------------------

    @classmethod
    def create(
        cls,
        store: ResultStore,
        name: str,
        scenarios: Sequence[Scenario],
        seed: int = 0,
        source: str = "",
        exist_ok: bool = False,
    ) -> "Campaign":
        """Journal ``scenarios`` as campaign ``name`` in ``store``.

        ``seed=None`` scenarios get deterministic per-position seeds
        derived from ``seed`` (exactly like a
        :class:`~repro.core.batch.BatchRunner` batch), so the journaled
        content keys are stable across every later run.

        Re-creating an existing campaign is an error unless ``exist_ok``
        is set *and* the journaled keys match exactly (same scenarios in
        the same order) -- then the existing campaign is returned, which
        makes ``campaign run`` idempotent for the same manifest.
        """
        if not name:
            raise ConfigError("campaign name must be non-empty")
        scenarios = list(scenarios)
        if not scenarios:
            raise ConfigError("a campaign needs at least one scenario")
        resolved = [
            s if s.seed is not None else s.with_seed(derive_seed(seed, i))
            for i, s in enumerate(scenarios)
        ]
        keys = [s.cache_key() for s in resolved]

        # The existence check lives inside the write transaction: BEGIN
        # IMMEDIATE serialises racing creators, so the loser *sees* the
        # winner's row instead of dying on the UNIQUE constraint.
        conn = store._conn()
        now = datetime.now(timezone.utc)
        journaled = None
        conn.execute("BEGIN IMMEDIATE")
        try:
            existing = conn.execute(
                "SELECT 1 FROM campaigns WHERE name=?", (name,)
            ).fetchone()
            if existing is None:
                conn.execute(
                    "INSERT INTO campaigns(name, source, total, created_at, "
                    "created_unix) VALUES (?, ?, ?, ?, ?)",
                    (
                        name,
                        source,
                        len(resolved),
                        now.isoformat(),
                        now.timestamp(),
                    ),
                )
                conn.executemany(
                    "INSERT INTO campaign_scenarios(campaign, idx, key, "
                    "scenario) VALUES (?, ?, ?, ?)",
                    [
                        (name, i, key, canonical_json(s.to_dict()))
                        for i, (key, s) in enumerate(zip(keys, resolved))
                    ],
                )
            else:
                journaled = [
                    row[0]
                    for row in conn.execute(
                        "SELECT key FROM campaign_scenarios "
                        "WHERE campaign=? ORDER BY idx",
                        (name,),
                    )
                ]
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if journaled is not None:
            if exist_ok and journaled == keys:
                return cls(store, name)
            raise ConfigError(
                f"campaign {name!r} already exists in {store.path}"
                + (
                    " with different scenarios"
                    if exist_ok
                    else " (pass exist_ok=True to reuse it)"
                )
            )
        return cls(store, name)

    # -- inspection --------------------------------------------------------------

    def scenarios(self) -> List[Scenario]:
        """The journaled scenario list, in campaign order."""
        return [
            Scenario.from_dict(json.loads(row[0]))
            for row in self.store._conn().execute(
                "SELECT scenario FROM campaign_scenarios "
                "WHERE campaign=? ORDER BY idx",
                (self.name,),
            )
        ]

    def pending(self) -> List[Scenario]:
        """Journaled scenarios whose results are not stored yet."""
        return [
            Scenario.from_dict(json.loads(row[0]))
            for row in self.store._conn().execute(
                "SELECT cs.scenario FROM campaign_scenarios cs "
                "LEFT JOIN results r ON r.key = cs.key "
                "WHERE cs.campaign=? AND r.key IS NULL ORDER BY cs.idx",
                (self.name,),
            )
        ]

    def status(self) -> CampaignStatus:
        """Progress derived from the durable results table."""
        done = int(
            self.store._conn().execute(
                "SELECT COUNT(*) FROM campaign_scenarios cs "
                "JOIN results r ON r.key = cs.key WHERE cs.campaign=?",
                (self.name,),
            ).fetchone()[0]
        )
        return CampaignStatus(
            name=self.name,
            total=self.total,
            done=done,
            source=self.source,
            created_at=self.created_at,
        )

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        executor: str = "process",
        runner: Optional[BatchRunner] = None,
        on_chunk: Optional[Callable[[int, int], None]] = None,
    ) -> List[SystemResult]:
        """Simulate everything still missing; return all results in order.

        Pending scenarios execute in chunks of ``chunk_size`` (default
        ``max(4 * jobs, 16)``), each written through to the store before
        the next starts, so a crash wastes at most one chunk.  Already
        stored scenarios are never re-simulated.  A custom ``runner``
        must carry this campaign's store (that write-through *is* the
        journal of completed work).

        ``on_chunk`` is the job-context hook: called as
        ``on_chunk(done, total)`` at every durable chunk boundary
        (before each chunk starts and once after the last), where a
        supervising job runner heartbeats its claim and checks for
        cancellation -- an exception raised from the hook aborts
        between chunks, losing no stored work.
        """
        if runner is None:
            runner = BatchRunner(jobs=jobs, executor=executor, store=self.store)
        elif runner.store is None:
            raise ConfigError(
                "campaign runner must carry the campaign's result store "
                "(results that never reach disk cannot be resumed)"
            )
        elif (
            runner.store is not self.store
            and runner.store.path.resolve() != self.store.path.resolve()
        ):
            raise ConfigError(
                f"campaign runner writes to {runner.store.path}, not this "
                f"campaign's store {self.store.path}; its results would "
                f"never count as done here"
            )
        scenarios = self.scenarios()
        chunk = chunk_size or max(4 * runner.jobs, 16)
        if chunk < 1:
            raise ConfigError("chunk_size must be >= 1")

        # Serve already-durable rows from the store, then simulate the
        # rest chunkwise, collecting each chunk's results as they are
        # produced -- the final assembly never re-reads fresh work.
        by_key: dict = {}
        pending: List[Scenario] = []
        for scenario in scenarios:
            key = scenario.cache_key()
            if key in by_key:
                continue
            stored = self.store.get(key)
            if stored is not None:
                by_key[key] = stored
            else:
                by_key[key] = None
                pending.append(scenario)
        done = len(scenarios) - len(pending)
        for start in range(0, len(pending), chunk):
            if on_chunk is not None:
                on_chunk(done, len(scenarios))
            batch = pending[start : start + chunk]
            for scenario, result in zip(batch, runner.run(batch)):
                by_key[scenario.cache_key()] = result
            done += len(batch)
        if on_chunk is not None:
            on_chunk(done, len(scenarios))
        return [by_key[s.cache_key()] for s in scenarios]

    def resume(
        self,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        executor: str = "process",
    ) -> List[SystemResult]:
        """Alias of :meth:`run`: continue after an interruption."""
        return self.run(jobs=jobs, chunk_size=chunk_size, executor=executor)

    def results(self) -> List[Optional[SystemResult]]:
        """Stored results in campaign order (``None`` where pending)."""
        return [self.store.get(s) for s in self.scenarios()]

    def export_rows(self) -> List[Tuple[Scenario, Optional[SystemResult]]]:
        """(scenario, result-or-None) pairs in campaign order."""
        scenarios = self.scenarios()
        return [(s, self.store.get(s)) for s in scenarios]


def campaign_names(store: ResultStore) -> List[str]:
    """Names of every campaign journaled in ``store``, sorted."""
    return [
        row[0]
        for row in store._conn().execute(
            "SELECT name FROM campaigns ORDER BY name"
        )
    ]


def campaign_statuses(store: ResultStore) -> List[CampaignStatus]:
    """Progress snapshots for every campaign in ``store``."""
    return [Campaign(store, name).status() for name in campaign_names(store)]
