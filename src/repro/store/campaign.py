"""Named, journaled, crash-safe campaign execution.

A :class:`Campaign` is a named list of scenarios journaled inside a
:class:`~repro.store.db.ResultStore`.  Creating one writes the *intent*
(every scenario, with its seed already resolved, and its content key)
into the store in a single transaction; running one simulates the
scenarios whose keys are not yet in the results table, in bounded
chunks, writing each chunk through to disk before starting the next.

That split is what makes campaigns resumable: completion state is never
tracked separately from the results themselves -- a scenario is done
exactly when its content-addressed result row exists -- so there is no
journal/result consistency to lose.  Kill the process at any point and
``Campaign(store, name).run()`` (or ``repro-wsn campaign resume NAME
--store DB``) picks up with at most one chunk of work repeated, and
**zero** re-simulation of anything already stored.

Scenarios are journaled with concrete seeds (``seed=None`` entries get
:func:`repro.rng.derive_seed`-derived ones at creation time), because a
floating seed would change the content key between runs and defeat
resumption.

Partitioned execution
---------------------
:meth:`Campaign.partition` splits the journaled scenario list into N
disjoint, contiguous :class:`CampaignPartition` slices; each runs as an
ordinary sub-campaign (``<name>@p<i>of<N>``) against whatever store its
process holds locally -- typically a scratch file or shard on its own
machine -- and :func:`~repro.store.merge.merge_stores` folds the rows
back into the canonical store afterwards.  Seeds are resolved over the
*full* list before slicing, so a partitioned run journals exactly the
content keys a single-store run would, and the final
``Campaign.run()`` against the merged store re-simulates **nothing**.
:meth:`Campaign.run_partitioned` drives the whole cycle (fan out over
processes -> merge -> assemble) in one call; every stage is kill-safe
because completion stays derived from the results tables.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.batch import BatchRunner
from repro.errors import ConfigError
from repro.obs.trace import span
from repro.rng import derive_seed
from repro.scenario import Scenario
from repro.store.db import ResultStore, canonical_json
from repro.system.result import SystemResult


@dataclass(frozen=True)
class CampaignStatus:
    """Progress snapshot of one campaign."""

    name: str
    total: int
    done: int
    source: str
    created_at: str

    @property
    def pending(self) -> int:
        return self.total - self.done

    @property
    def complete(self) -> bool:
        return self.done >= self.total

    def summary(self) -> str:
        """One-line progress report."""
        pct = 100.0 * self.done / self.total if self.total else 100.0
        label = f" [{self.source}]" if self.source else ""
        return (
            f"{self.name}{label}: {self.done}/{self.total} done "
            f"({pct:.0f}%), {self.pending} pending"
        )


class Campaign:
    """A journaled scenario list bound to a result store.

    Load an existing campaign with ``Campaign(store, name)``; create a
    new one with :meth:`create`.  ``run()`` simulates whatever is still
    missing and returns the full, input-ordered result list; calling it
    again on a complete campaign costs only store reads.
    """

    def __init__(self, store: ResultStore, name: str):
        if not name:
            raise ConfigError("campaign name must be non-empty")
        self.store = store
        self.name = name
        row = store._conn().execute(
            "SELECT source, total, created_at FROM campaigns WHERE name=?",
            (name,),
        ).fetchone()
        if row is None:
            known = ", ".join(campaign_names(store)) or "(none)"
            raise ConfigError(
                f"unknown campaign {name!r} in {store.path} (known: {known})"
            )
        self.source: str = row[0]
        self.total: int = int(row[1])
        self.created_at: str = row[2]

    # -- creation ---------------------------------------------------------------

    @classmethod
    def create(
        cls,
        store: ResultStore,
        name: str,
        scenarios: Sequence[Scenario],
        seed: int = 0,
        source: str = "",
        exist_ok: bool = False,
    ) -> "Campaign":
        """Journal ``scenarios`` as campaign ``name`` in ``store``.

        ``seed=None`` scenarios get deterministic per-position seeds
        derived from ``seed`` (exactly like a
        :class:`~repro.core.batch.BatchRunner` batch), so the journaled
        content keys are stable across every later run.

        Re-creating an existing campaign is an error unless ``exist_ok``
        is set *and* the journaled keys match exactly (same scenarios in
        the same order) -- then the existing campaign is returned, which
        makes ``campaign run`` idempotent for the same manifest.
        """
        if not name:
            raise ConfigError("campaign name must be non-empty")
        scenarios = list(scenarios)
        if not scenarios:
            raise ConfigError("a campaign needs at least one scenario")
        resolved = [
            s if s.seed is not None else s.with_seed(derive_seed(seed, i))
            for i, s in enumerate(scenarios)
        ]
        keys = [s.cache_key() for s in resolved]

        # The existence check lives inside the write transaction: BEGIN
        # IMMEDIATE serialises racing creators, so the loser *sees* the
        # winner's row instead of dying on the UNIQUE constraint.
        conn = store._conn()
        now = datetime.now(timezone.utc)
        journaled = None
        conn.execute("BEGIN IMMEDIATE")
        try:
            existing = conn.execute(
                "SELECT 1 FROM campaigns WHERE name=?", (name,)
            ).fetchone()
            if existing is None:
                conn.execute(
                    "INSERT INTO campaigns(name, source, total, created_at, "
                    "created_unix) VALUES (?, ?, ?, ?, ?)",
                    (
                        name,
                        source,
                        len(resolved),
                        now.isoformat(),
                        now.timestamp(),
                    ),
                )
                conn.executemany(
                    "INSERT INTO campaign_scenarios(campaign, idx, key, "
                    "scenario) VALUES (?, ?, ?, ?)",
                    [
                        (name, i, key, canonical_json(s.to_dict()))
                        for i, (key, s) in enumerate(zip(keys, resolved))
                    ],
                )
            else:
                journaled = [
                    row[0]
                    for row in conn.execute(
                        "SELECT key FROM campaign_scenarios "
                        "WHERE campaign=? ORDER BY idx",
                        (name,),
                    )
                ]
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if journaled is not None:
            if exist_ok and journaled == keys:
                return cls(store, name)
            raise ConfigError(
                f"campaign {name!r} already exists in {store.path}"
                + (
                    " with different scenarios"
                    if exist_ok
                    else " (pass exist_ok=True to reuse it)"
                )
            )
        return cls(store, name)

    # -- inspection --------------------------------------------------------------

    def scenarios(self) -> List[Scenario]:
        """The journaled scenario list, in campaign order."""
        return [
            Scenario.from_dict(json.loads(row[0]))
            for row in self.store._conn().execute(
                "SELECT scenario FROM campaign_scenarios "
                "WHERE campaign=? ORDER BY idx",
                (self.name,),
            )
        ]

    def _journal_rows(self) -> List[Tuple[str, str]]:
        """(key, scenario document) journal rows, in campaign order."""
        return [
            (row[0], row[1])
            for row in self.store._conn().execute(
                "SELECT key, scenario FROM campaign_scenarios "
                "WHERE campaign=? ORDER BY idx",
                (self.name,),
            )
        ]

    def pending(self) -> List[Scenario]:
        """Journaled scenarios whose results are not stored yet.

        Membership goes through the store's key API (not a SQL join
        against the results table) because the journal and the result
        rows need not share a database file -- on a sharded store the
        journal lives in the meta shard and the rows are spread out.
        """
        rows = self._journal_rows()
        present = self.store.have_keys([key for key, _ in rows])
        return [
            Scenario.from_dict(json.loads(doc))
            for key, doc in rows
            if key not in present
        ]

    def status(self) -> CampaignStatus:
        """Progress derived from the durable results table."""
        keys = [key for key, _ in self._journal_rows()]
        present = self.store.have_keys(keys)
        done = sum(1 for key in keys if key in present)
        return CampaignStatus(
            name=self.name,
            total=self.total,
            done=done,
            source=self.source,
            created_at=self.created_at,
        )

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        executor: str = "process",
        runner: Optional[BatchRunner] = None,
        on_chunk: Optional[Callable[[int, int], None]] = None,
    ) -> List[SystemResult]:
        """Simulate everything still missing; return all results in order.

        Pending scenarios execute in chunks of ``chunk_size`` (default
        ``max(4 * jobs, 16)``), each written through to the store before
        the next starts, so a crash wastes at most one chunk.  Already
        stored scenarios are never re-simulated.  A custom ``runner``
        must carry this campaign's store (that write-through *is* the
        journal of completed work).

        ``on_chunk`` is the job-context hook: called as
        ``on_chunk(done, total)`` at every durable chunk boundary
        (before each chunk starts and once after the last), where a
        supervising job runner heartbeats its claim and checks for
        cancellation -- an exception raised from the hook aborts
        between chunks, losing no stored work.
        """
        if runner is None:
            runner = BatchRunner(jobs=jobs, executor=executor, store=self.store)
        elif runner.store is None:
            raise ConfigError(
                "campaign runner must carry the campaign's result store "
                "(results that never reach disk cannot be resumed)"
            )
        elif (
            runner.store is not self.store
            and runner.store.path.resolve() != self.store.path.resolve()
        ):
            raise ConfigError(
                f"campaign runner writes to {runner.store.path}, not this "
                f"campaign's store {self.store.path}; its results would "
                f"never count as done here"
            )
        scenarios = self.scenarios()
        chunk = chunk_size or max(4 * runner.jobs, 16)
        if chunk < 1:
            raise ConfigError("chunk_size must be >= 1")

        # Serve already-durable rows from the store, then simulate the
        # rest chunkwise, collecting each chunk's results as they are
        # produced -- the final assembly never re-reads fresh work.
        by_key: dict = {}
        pending: List[Scenario] = []
        for scenario in scenarios:
            key = scenario.cache_key()
            if key in by_key:
                continue
            stored = self.store.get(key)
            if stored is not None:
                by_key[key] = stored
            else:
                by_key[key] = None
                pending.append(scenario)
        done = len(scenarios) - len(pending)
        with span(
            "campaign.run",
            campaign=self.name,
            total=len(scenarios),
            pending=len(pending),
        ):
            for start in range(0, len(pending), chunk):
                if on_chunk is not None:
                    on_chunk(done, len(scenarios))
                batch = pending[start : start + chunk]
                with span(
                    "campaign.chunk",
                    campaign=self.name,
                    start=start,
                    size=len(batch),
                ):
                    for scenario, result in zip(batch, runner.run(batch)):
                        by_key[scenario.cache_key()] = result
                done += len(batch)
            if on_chunk is not None:
                on_chunk(done, len(scenarios))
        return [by_key[s.cache_key()] for s in scenarios]

    def resume(
        self,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        executor: str = "process",
    ) -> List[SystemResult]:
        """Alias of :meth:`run`: continue after an interruption."""
        return self.run(jobs=jobs, chunk_size=chunk_size, executor=executor)

    def results(self) -> List[Optional[SystemResult]]:
        """Stored results in campaign order (``None`` where pending)."""
        return [self.store.get(s) for s in self.scenarios()]

    def export_rows(self) -> List[Tuple[Scenario, Optional[SystemResult]]]:
        """(scenario, result-or-None) pairs in campaign order."""
        scenarios = self.scenarios()
        return [(s, self.store.get(s)) for s in scenarios]

    # -- partitioned execution ---------------------------------------------------

    def partition(self, parts: int) -> List["CampaignPartition"]:
        """Split the journaled scenario list into ``parts`` disjoint slices.

        Contiguous, near-equal slices in journal order; seeds are
        already concrete in the journal, so every partition's content
        keys are exactly the canonical campaign's.
        """
        groups = partition_scenarios(self.scenarios(), parts)
        return [
            CampaignPartition(
                campaign=self.name,
                index=i + 1,
                of=parts,
                scenarios=tuple(group),
            )
            for i, group in enumerate(groups)
        ]

    def run_partitioned(
        self,
        parts: int,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        workdir: Optional[Union[str, Path]] = None,
    ) -> List[SystemResult]:
        """Fan the campaign out over ``parts`` processes, merge, assemble.

        Each partition runs in its own process against its own local
        scratch store (``<workdir>/p<i>of<N>.db``; ``workdir`` defaults
        to ``<campaign>.parts`` next to the canonical store), so the N
        writers never contend on one SQLite file.  When every partition
        finishes, the scratch rows merge into the canonical store
        (byte-identity checked, scratch journals left behind) and the
        ordinary :meth:`run` assembles the result list with zero
        re-simulation.

        Kill-safe at every stage: partitions resume from their scratch
        stores, the merge is idempotent, and re-running the whole call
        only redoes what never reached a durable store.  ``jobs`` is
        the *inner* fan-out per partition (default 1: the partition
        processes are the parallelism).
        """
        import concurrent.futures

        partitions = self.partition(parts)
        if workdir is None:
            safe = self.name.replace("/", "_")
            workdir = self.store.path.parent / f"{safe}.parts"
        workdir = Path(workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        paths = [
            workdir / f"p{p.index}of{p.of}.db" for p in partitions
        ]
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=len(partitions)
        ) as pool:
            futures = [
                pool.submit(_run_partition, str(path), part, jobs, chunk_size)
                for path, part in zip(paths, partitions)
            ]
            for future in futures:
                future.result()  # re-raise the first partition failure
        from repro.store.merge import merge_stores

        for path in paths:
            merge_stores(self.store, ResultStore(path), journals=False)
        return self.run(jobs=1)


def partition_slices(total: int, parts: int) -> List[Tuple[int, int]]:
    """Deterministic ``[start, stop)`` slices: N contiguous, sizes +/-1."""
    if parts < 1:
        raise ConfigError(f"partition count must be >= 1, got {parts}")
    if parts > total:
        raise ConfigError(
            f"cannot split {total} scenario(s) into {parts} partitions "
            f"(every partition needs at least one)"
        )
    base, extra = divmod(total, parts)
    slices: List[Tuple[int, int]] = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


def partition_scenarios(
    scenarios: Sequence[Scenario], parts: int, seed: int = 0
) -> List[List[Scenario]]:
    """Seed-resolve the *full* list, then slice it into ``parts`` groups.

    Resolution happens before slicing with the same derivation
    :meth:`Campaign.create` uses, so a scenario's content key is
    identical whether it runs in partition 3 of 4 or in one big run --
    the invariant the final merge depends on.
    """
    resolved = [
        s if s.seed is not None else s.with_seed(derive_seed(seed, i))
        for i, s in enumerate(scenarios)
    ]
    return [
        resolved[start:stop]
        for start, stop in partition_slices(len(resolved), parts)
    ]


def partition_name(campaign: str, index: int, of: int) -> str:
    """The sub-campaign name of one partition (``index`` is 1-based)."""
    return f"{campaign}@p{index}of{of}"


_PARTITION_NAME = re.compile(r"^(?P<campaign>.+)@p(?P<index>\d+)of(?P<of>\d+)$")


def split_partition_name(name: str) -> Optional[Tuple[str, int, int]]:
    """Invert :func:`partition_name`: ``(campaign, index, of)`` or ``None``.

    ``None`` means ``name`` is an ordinary campaign, not a partition
    sub-campaign -- the status listing uses this to group partitions
    under their parent instead of showing them as unrelated campaigns.
    """
    match = _PARTITION_NAME.match(name)
    if match is None:
        return None
    return (
        match.group("campaign"),
        int(match.group("index")),
        int(match.group("of")),
    )


@dataclass(frozen=True)
class CampaignPartition:
    """One disjoint slice of a campaign, runnable against any store.

    Picklable (it travels into partition worker processes); running it
    journals an ordinary sub-campaign named
    ``<campaign>@p<index>of<of>`` in the target store, so partitions
    inherit the full kill/resume machinery for free.
    """

    campaign: str
    index: int  # 1-based
    of: int
    scenarios: Tuple[Scenario, ...]

    @property
    def name(self) -> str:
        return partition_name(self.campaign, self.index, self.of)

    def run(
        self,
        store: ResultStore,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        executor: str = "process",
        on_chunk: Optional[Callable[[int, int], None]] = None,
    ) -> List[SystemResult]:
        """Execute this slice as a sub-campaign of ``store``."""
        sub = Campaign.create(
            store,
            self.name,
            list(self.scenarios),
            source=f"partition {self.index}/{self.of} of {self.campaign}",
            exist_ok=True,
        )
        return sub.run(
            jobs=jobs,
            chunk_size=chunk_size,
            executor=executor,
            on_chunk=on_chunk,
        )


def _run_partition(
    path: str,
    partition: CampaignPartition,
    jobs: int,
    chunk_size: Optional[int],
) -> int:
    """Partition worker body (module-level so it pickles into processes)."""
    results = partition.run(
        ResultStore(path),
        jobs=jobs,
        chunk_size=chunk_size,
        executor="thread",
    )
    return len(results)


def campaign_names(store: ResultStore) -> List[str]:
    """Names of every campaign journaled in ``store``, sorted."""
    return [
        row[0]
        for row in store._conn().execute(
            "SELECT name FROM campaigns ORDER BY name"
        )
    ]


def campaign_statuses(store: ResultStore) -> List[CampaignStatus]:
    """Progress snapshots for every campaign in ``store``."""
    return [Campaign(store, name).status() for name in campaign_names(store)]


@dataclass(frozen=True)
class CampaignGroup:
    """One campaign with its partition sub-campaigns folded underneath.

    ``status`` is the parent campaign's own snapshot when the store
    journals it (a coordinator or ``run_partitioned`` store does; a
    worker's scratch store holding only partitions does not).
    ``partitions`` are the ``NAME@pIofN`` sub-campaigns in index order
    and ``of`` is their declared partition count.
    """

    name: str
    status: Optional[CampaignStatus]
    partitions: Tuple[CampaignStatus, ...] = ()
    of: int = 0

    @property
    def partitions_complete(self) -> int:
        return sum(1 for status in self.partitions if status.complete)

    def summary_lines(self) -> List[str]:
        """Multi-line report: parent line, then indented partitions."""
        head = (
            self.status.summary()
            if self.status is not None
            else f"{self.name}: (journal not in this store)"
        )
        lines = [head]
        if self.of:
            lines.append(
                f"  partitions: {self.partitions_complete}/{self.of} complete"
            )
            for status in self.partitions:
                split = split_partition_name(status.name)
                index = split[1] if split else 0
                lines.append(f"    p{index}: {status.summary()}")
        return lines


def group_campaign_statuses(
    statuses: Sequence[CampaignStatus],
) -> List[CampaignGroup]:
    """Fold partition sub-campaigns under their parent campaign.

    Pure reshaping of :func:`campaign_statuses` output: every
    ``NAME@pIofN`` status attaches to group ``NAME`` (created even when
    the parent journal itself is absent, as on a worker's scratch
    store); everything else becomes its own group.  Groups come back
    sorted by name, partitions by index.
    """
    own: dict = {}
    parts: dict = {}
    for status in statuses:
        split = split_partition_name(status.name)
        if split is None:
            own[status.name] = status
        else:
            parent, index, of = split
            parts.setdefault(parent, []).append((index, of, status))
    groups = []
    for name in sorted(set(own) | set(parts)):
        grouped = sorted(parts.get(name, []))
        groups.append(
            CampaignGroup(
                name=name,
                status=own.get(name),
                partitions=tuple(status for _, _, status in grouped),
                of=max((of for _, of, _ in grouped), default=0),
            )
        )
    return groups
