"""Persistent content-addressed result storage and resumable campaigns.

The simulation stack computes; this package remembers.  Two pieces:

- :class:`ResultStore` -- a stdlib-SQLite, content-addressed map from
  ``Scenario.cache_key()`` to the scenario's full JSON-round-trippable
  :class:`~repro.system.result.SystemResult` payload plus provenance
  (backend, library version, wall time, timestamp).  Plugged into a
  :class:`~repro.core.batch.BatchRunner` it becomes the second cache
  tier (memory LRU -> disk store -> simulate, write-through), shared by
  every process that opens the same file.
- :class:`Campaign` -- a named, journaled scenario list executed against
  a store in crash-safe chunks.  ``run()``/``resume()`` only simulate
  what the store does not already hold, so large studies survive kills,
  reboots and code iterations without re-simulating finished work.

Quickstart::

    from repro import BatchRunner, ResultStore, Campaign, named_family

    store = ResultStore("results.db")
    family = named_family("factory-floor")
    camp = Campaign.create(store, "floor-study", family.expand(n=40, seed=0))
    camp.run(jobs=4)          # kill it halfway...
    camp.resume(jobs=4)       # ...and only the missing scenarios run

    rows = store.query(family="factory-floor", min_transmissions=100)

Scaling out: a :class:`ShardedResultStore` spreads the result rows over
N per-shard SQLite files behind the same API (N independent writers
instead of one), :func:`merge_stores`/:func:`sync_stores` fold stores
into each other with byte-identity checks, and
:meth:`Campaign.run_partitioned` fans a campaign out over processes
with local scratch stores and merges at the end::

    store = ShardedResultStore("results.d", shards=4)
    camp = Campaign.create(store, "floor-study", family.expand(n=40, seed=0))
    camp.run_partitioned(parts=4)    # 4 processes, 4 local stores, merged
"""

from repro.store.db import (
    RESULT_COLUMNS,
    STORE_SCHEMA,
    ResultStore,
    StoredResult,
    StoredStudy,
    StoreStats,
    canonical_json,
    scenario_family,
)
from repro.store.campaign import (
    Campaign,
    CampaignGroup,
    CampaignPartition,
    CampaignStatus,
    campaign_names,
    campaign_statuses,
    group_campaign_statuses,
    partition_name,
    partition_scenarios,
    partition_slices,
    split_partition_name,
)
from repro.store.merge import (
    MergeReport,
    import_raw_rows,
    merge_stores,
    sync_stores,
)
from repro.store.shard import (
    DEFAULT_SHARDS,
    ShardedResultStore,
    open_store,
    shard_index,
)

__all__ = [
    "DEFAULT_SHARDS",
    "RESULT_COLUMNS",
    "STORE_SCHEMA",
    "MergeReport",
    "ResultStore",
    "ShardedResultStore",
    "StoredResult",
    "StoredStudy",
    "StoreStats",
    "Campaign",
    "CampaignGroup",
    "CampaignPartition",
    "CampaignStatus",
    "campaign_names",
    "campaign_statuses",
    "canonical_json",
    "group_campaign_statuses",
    "import_raw_rows",
    "merge_stores",
    "open_store",
    "partition_name",
    "partition_scenarios",
    "partition_slices",
    "scenario_family",
    "shard_index",
    "split_partition_name",
    "sync_stores",
]
