"""Persistent content-addressed result storage and resumable campaigns.

The simulation stack computes; this package remembers.  Two pieces:

- :class:`ResultStore` -- a stdlib-SQLite, content-addressed map from
  ``Scenario.cache_key()`` to the scenario's full JSON-round-trippable
  :class:`~repro.system.result.SystemResult` payload plus provenance
  (backend, library version, wall time, timestamp).  Plugged into a
  :class:`~repro.core.batch.BatchRunner` it becomes the second cache
  tier (memory LRU -> disk store -> simulate, write-through), shared by
  every process that opens the same file.
- :class:`Campaign` -- a named, journaled scenario list executed against
  a store in crash-safe chunks.  ``run()``/``resume()`` only simulate
  what the store does not already hold, so large studies survive kills,
  reboots and code iterations without re-simulating finished work.

Quickstart::

    from repro import BatchRunner, ResultStore, Campaign, named_family

    store = ResultStore("results.db")
    family = named_family("factory-floor")
    camp = Campaign.create(store, "floor-study", family.expand(n=40, seed=0))
    camp.run(jobs=4)          # kill it halfway...
    camp.resume(jobs=4)       # ...and only the missing scenarios run

    rows = store.query(family="factory-floor", min_transmissions=100)
"""

from repro.store.db import (
    STORE_SCHEMA,
    ResultStore,
    StoredResult,
    StoredStudy,
    StoreStats,
    canonical_json,
    scenario_family,
)
from repro.store.campaign import (
    Campaign,
    CampaignStatus,
    campaign_names,
    campaign_statuses,
)

__all__ = [
    "STORE_SCHEMA",
    "ResultStore",
    "StoredResult",
    "StoredStudy",
    "StoreStats",
    "Campaign",
    "CampaignStatus",
    "campaign_names",
    "campaign_statuses",
    "canonical_json",
    "scenario_family",
]
