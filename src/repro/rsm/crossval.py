"""Cross-validation of response-surface fits.

``loocv_rmse`` uses the closed-form leave-one-out identity
``e_(i) = e_i / (1 - h_ii)`` (no refitting); ``kfold_rmse`` refits on
explicit folds for models where the identity does not apply or when the
user wants grouped folds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import FitError
from repro.rng import SeedLike, ensure_rng
from repro.rsm.regression import ols


def loocv_rmse(X: np.ndarray, y: np.ndarray) -> float:
    """Leave-one-out RMSE via the hat-matrix identity."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    fit = ols(X, y)
    ones_minus_h = 1.0 - fit.leverage
    mask = ones_minus_h > 1e-12
    if not np.any(mask):
        raise FitError("every design point is saturated; LOOCV undefined")
    errs = fit.residuals[mask] / ones_minus_h[mask]
    return float(np.sqrt(np.mean(errs**2)))


def kfold_rmse(
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 5,
    seed: SeedLike = None,
) -> float:
    """K-fold cross-validated RMSE (refits per fold).

    Folds are random but seedable.  Requires every training split to keep
    at least as many rows as model terms.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    n, p = X.shape
    if n_folds < 2 or n_folds > n:
        raise FitError(f"need 2 <= n_folds <= {n}")
    rng = ensure_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, n_folds)
    errors = []
    for fold in folds:
        train = np.setdiff1d(order, fold)
        if len(train) < p:
            raise FitError(
                f"fold leaves {len(train)} rows for {p} terms; reduce folds"
            )
        fit = ols(X[train], y[train])
        pred = X[fold] @ fit.coefficients
        errors.extend((y[fold] - pred) ** 2)
    return float(np.sqrt(np.mean(errors)))
