"""Least-squares regression core (paper eqs. 5-7).

Solves ``min ||y - X beta||^2`` via QR (``numpy.linalg.lstsq``), which is
numerically safer than forming the normal equations of eq. (7) directly,
and exposes the quantities diagnostics need (hat diagonal, coefficient
covariance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import FitError


@dataclass
class OlsFit:
    """Raw ordinary-least-squares results."""

    coefficients: np.ndarray
    residuals: np.ndarray
    fitted: np.ndarray
    sse: float
    dof: int  # residual degrees of freedom (n - p)
    sigma2: float  # residual variance estimate (SSE / dof; 0 if dof == 0)
    leverage: np.ndarray  # hat-matrix diagonal
    cov: Optional[np.ndarray]  # coefficient covariance (None if dof == 0)


def ols(X: np.ndarray, y: np.ndarray, rcond: float = 1e-10) -> OlsFit:
    """Fit ``y ~ X beta`` by least squares.

    Raises
    ------
    FitError
        If there are fewer runs than coefficients or the design matrix is
        rank deficient (a DOE that cannot support the model).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    n, p = X.shape
    if len(y) != n:
        raise FitError(f"X has {n} rows but y has {len(y)} values")
    if n < p:
        raise FitError(
            f"{n} runs cannot identify {p} coefficients; enlarge the design"
        )
    rank = np.linalg.matrix_rank(X, tol=rcond * max(X.shape) * np.abs(X).max())
    if rank < p:
        raise FitError(
            f"design matrix is rank deficient (rank {rank} < {p} terms); "
            "the DOE does not support this model"
        )
    beta, _, _, _ = np.linalg.lstsq(X, y, rcond=rcond)
    fitted = X @ beta
    residuals = y - fitted
    sse = float(residuals @ residuals)
    dof = n - p
    sigma2 = sse / dof if dof > 0 else 0.0

    # Hat diagonal via the thin QR factor: h_ii = ||Q_i||^2.
    q, _ = np.linalg.qr(X)
    leverage = np.sum(q * q, axis=1)

    cov = None
    if dof > 0:
        xtx_inv = np.linalg.inv(X.T @ X)
        cov = sigma2 * xtx_inv
    return OlsFit(
        coefficients=beta,
        residuals=residuals,
        fitted=fitted,
        sse=sse,
        dof=dof,
        sigma2=sigma2,
        leverage=leverage,
        cov=cov,
    )


def information_matrix(X: np.ndarray) -> np.ndarray:
    """The DOE "information matrix" ``X'X`` (paper section II-B)."""
    X = np.asarray(X, dtype=float)
    return X.T @ X


def d_criterion(X: np.ndarray) -> float:
    """``det(X'X)`` -- the quantity D-optimal designs maximise."""
    return float(np.linalg.det(information_matrix(X)))


def log_d_criterion(X: np.ndarray) -> float:
    """``log det(X'X)`` (slogdet; -inf for singular designs)."""
    sign, logdet = np.linalg.slogdet(information_matrix(X))
    if sign <= 0:
        return float("-inf")
    return float(logdet)
