"""Goodness-of-fit diagnostics (the assessment the paper omits).

Computed from the raw OLS results:

- ``r2`` / ``adj_r2`` -- explained variance (adjusted for model size).
- ``press`` / ``press_rmse`` -- leave-one-out prediction error computed
  from leverages (``e_i / (1 - h_ii)``), the standard RSM adequacy check.
- ``vif`` -- variance inflation factors of the non-intercept terms
  (collinearity of the design).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import FitError
from repro.rsm.regression import OlsFit, ols


@dataclass(frozen=True)
class FitDiagnostics:
    """Summary statistics of a least-squares fit."""

    n: int
    p: int
    r2: float
    adj_r2: float
    rmse: float
    press: float
    press_rmse: float
    max_leverage: float
    vif: Optional[np.ndarray]

    def rows(self) -> List[str]:
        """Readable report lines."""
        lines = [
            f"n = {self.n}, p = {self.p}",
            f"R^2 = {self.r2:.4f}, adj R^2 = {self.adj_r2:.4f}",
            f"RMSE = {self.rmse:.4g}, PRESS RMSE = {self.press_rmse:.4g}",
            f"max leverage = {self.max_leverage:.3f}",
        ]
        if self.vif is not None and len(self.vif):
            lines.append(f"max VIF = {float(np.max(self.vif)):.2f}")
        return lines


def diagnostics(X: np.ndarray, y: np.ndarray, fit: Optional[OlsFit] = None) -> FitDiagnostics:
    """Compute :class:`FitDiagnostics` for a fitted design matrix."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    result = fit or ols(X, y)
    n, p = X.shape
    ss_total = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 - result.sse / ss_total if ss_total > 0 else 1.0
    adj_r2 = (
        1.0 - (1.0 - r2) * (n - 1) / (n - p) if n > p and ss_total > 0 else r2
    )
    ones_minus_h = 1.0 - result.leverage
    # Saturated points (h == 1) predict themselves exactly; exclude them
    # from PRESS rather than dividing by zero.
    mask = ones_minus_h > 1e-12
    press_terms = (result.residuals[mask] / ones_minus_h[mask]) ** 2
    press = float(np.sum(press_terms))
    press_rmse = float(np.sqrt(press / max(np.sum(mask), 1)))
    rmse = float(np.sqrt(result.sse / n))
    vif = _vif(X)
    return FitDiagnostics(
        n=n,
        p=p,
        r2=r2,
        adj_r2=adj_r2,
        rmse=rmse,
        press=press,
        press_rmse=press_rmse,
        max_leverage=float(np.max(result.leverage)),
        vif=vif,
    )


def _vif(X: np.ndarray) -> Optional[np.ndarray]:
    """Variance inflation factors of the non-intercept columns."""
    n, p = X.shape
    if p < 3 or n <= p:
        return None
    vifs = []
    for j in range(1, p):
        others = np.delete(X, j, axis=1)
        target = X[:, j]
        try:
            beta, _, _, _ = np.linalg.lstsq(others, target, rcond=None)
        except np.linalg.LinAlgError:  # pragma: no cover - lstsq rarely fails
            return None
        resid = target - others @ beta
        ss_res = float(resid @ resid)
        ss_tot = float(np.sum((target - np.mean(target)) ** 2))
        if ss_tot <= 0 or ss_res <= 0:
            vifs.append(float("inf"))
        else:
            r2_j = 1.0 - ss_res / ss_tot
            vifs.append(1.0 / (1.0 - r2_j) if r2_j < 1.0 else float("inf"))
    return np.asarray(vifs)
