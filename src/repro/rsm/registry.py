"""Named surrogate fitters: the response-surface stage registry.

Mirrors :mod:`repro.backends`: a process-wide registry maps a name to a
fitter with the uniform signature

    ``fitter(points_coded, responses, space, **options) -> ResponseSurface``

so a :class:`~repro.core.study.StudySpec` (or the CLI's ``explore
--surrogate``) can select the surrogate declaratively.  The shipped
names are the polynomial bases of :class:`~repro.rsm.basis.PolynomialBasis`
fitted by ordinary least squares -- ``quadratic`` is the paper's eq. (4)
/ eq. (9) model.

The registry is the open slot for richer surrogates (kriging, radial
basis functions), with one caveat: the study pipeline consumes the
:class:`~repro.rsm.model.ResponseSurface` interface -- ``predict_coded``
for optimisation, ``basis.expand`` + ``fit`` for the goodness-of-fit
diagnostics, ``to_string`` for reports -- so a non-polynomial fitter
must return an object honouring that same interface (e.g. a subclass
with a suitable feature basis), not an arbitrary model type.

All shipped fitters are deterministic (OLS has no random state); custom
fitters must be deterministic too, which the registry conformance tests
assert for every registered name.

Third parties extend the registry with :func:`register_surrogate`;
unknown names fail with a :class:`~repro.errors.ConfigError` listing
what is available.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.rsm.basis import KINDS
from repro.rsm.model import ResponseSurface, fit_response_surface

#: The uniform surrogate-fitter signature.
SurrogateFitter = Callable[..., ResponseSurface]

_REGISTRY: Dict[str, SurrogateFitter] = {}


def register_surrogate(
    name: str, fitter: SurrogateFitter, overwrite: bool = False
) -> None:
    """Register a surrogate fitter under ``name``.

    ``fitter(points_coded, responses, space, **options)`` must return a
    :class:`~repro.rsm.model.ResponseSurface` and be deterministic
    (same data, same model -- studies rely on this to reproduce
    bit-identical outcomes on resume).  Re-registering an existing name
    requires ``overwrite=True`` so typos cannot silently shadow a
    shipped fitter.
    """
    if not name:
        raise ConfigError("surrogate name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ConfigError(
            f"surrogate {name!r} is already registered (pass overwrite=True)"
        )
    _REGISTRY[name] = fitter


def surrogate_names() -> List[str]:
    """Registered surrogate names."""
    return sorted(_REGISTRY)


def get_surrogate(name: str) -> SurrogateFitter:
    """The fitter registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(surrogate_names())
        raise ConfigError(f"unknown surrogate {name!r} (known: {known})") from None


def _polynomial(kind: str) -> SurrogateFitter:
    def fitter(points_coded, responses, space=None, **options) -> ResponseSurface:
        return fit_response_surface(
            points_coded, responses, kind=kind, space=space, **options
        )

    fitter.__name__ = f"fit_{kind}"
    fitter.__doc__ = f"OLS fit of the {kind!r} polynomial basis."
    return fitter


# Every polynomial basis kind, under its basis name ("pure_quadratic"
# registers as "pure-quadratic" -- registry names are kebab-case).
for _kind in KINDS:
    register_surrogate(_kind.replace("_", "-"), _polynomial(_kind))
