"""Coded design variables (paper eq. 3) and the parameter space.

RSM regression operates on dimensionless *coded* variables so that
coefficients are comparable across parameters with wildly different units
(hertz vs seconds here).  The standard affine coding maps the range
``[a_min, a_max]`` onto ``[-1, +1]``:

    ``x = (a - (a_max + a_min)/2) / ((a_max - a_min)/2)``

Note: the paper's eq. (3) prints ``(a_max + a_min)/2`` in the denominator
as well; that cannot reproduce its own Table V coded levels of
[-1, 0, +1] (e.g. the watchdog range 60-600 s would code 600 s as +0.82),
so we implement the standard half-*range* denominator, which does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import DesignError


@dataclass(frozen=True)
class Parameter:
    """One design parameter with its natural range.

    Parameters
    ----------
    name:
        Identifier (e.g. ``"clock_hz"``).
    low, high:
        Natural-unit range bounds (Table V).
    coded_symbol:
        Display symbol (the paper uses x1, x2, x3).
    unit:
        Natural unit for reports.
    """

    name: str
    low: float
    high: float
    coded_symbol: str = "x"
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise DesignError(f"parameter {self.name!r}: need low < high")

    @property
    def center(self) -> float:
        """Midpoint of the natural range."""
        return 0.5 * (self.high + self.low)

    @property
    def half_range(self) -> float:
        """Half-width of the natural range."""
        return 0.5 * (self.high - self.low)

    def to_coded(self, natural: float) -> float:
        """Natural value -> coded value (range maps to [-1, 1])."""
        return (natural - self.center) / self.half_range

    def to_natural(self, coded: float) -> float:
        """Coded value -> natural value."""
        return self.center + coded * self.half_range

    def contains(self, natural: float, tol: float = 1e-9) -> bool:
        """Whether a natural value lies within the range (with tolerance)."""
        span = self.high - self.low
        return self.low - tol * span <= natural <= self.high + tol * span

    # -- serialisation --------------------------------------------------------

    def to_payload(self) -> dict:
        """Plain-JSON dictionary (``from_payload`` round-trips it)."""
        return {
            "name": self.name,
            "low": self.low,
            "high": self.high,
            "coded_symbol": self.coded_symbol,
            "unit": self.unit,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Parameter":
        """Rebuild a parameter from :meth:`to_payload` output."""
        return cls(
            name=str(payload["name"]),
            low=float(payload["low"]),
            high=float(payload["high"]),
            coded_symbol=str(payload.get("coded_symbol", "x")),
            unit=str(payload.get("unit", "")),
        )


class CodedTransform:
    """Vectorised natural <-> coded mapping over several parameters."""

    def __init__(self, parameters: Sequence[Parameter]):
        if not parameters:
            raise DesignError("need at least one parameter")
        self.parameters = list(parameters)
        self._centers = np.array([p.center for p in self.parameters])
        self._half_ranges = np.array([p.half_range for p in self.parameters])

    @property
    def k(self) -> int:
        """Number of parameters."""
        return len(self.parameters)

    def to_coded(self, natural: np.ndarray) -> np.ndarray:
        """Map natural rows to coded rows (accepts 1-D or 2-D arrays)."""
        arr = np.asarray(natural, dtype=float)
        return (arr - self._centers) / self._half_ranges

    def to_natural(self, coded: np.ndarray) -> np.ndarray:
        """Map coded rows to natural rows (accepts 1-D or 2-D arrays)."""
        arr = np.asarray(coded, dtype=float)
        return self._centers + arr * self._half_ranges


class ParameterSpace(CodedTransform):
    """A named, bounded design space (the paper's Table V).

    Extends :class:`CodedTransform` with bounds handling and grids, which
    is all the DOE generators need.
    """

    def names(self) -> List[str]:
        """Parameter names in order."""
        return [p.name for p in self.parameters]

    def bounds_natural(self) -> List[Tuple[float, float]]:
        """Natural (low, high) per parameter."""
        return [(p.low, p.high) for p in self.parameters]

    def bounds_coded(self) -> List[Tuple[float, float]]:
        """Coded bounds: always (-1, 1)."""
        return [(-1.0, 1.0)] * self.k

    def clip_coded(self, coded: np.ndarray) -> np.ndarray:
        """Clamp coded rows into the [-1, 1] box."""
        return np.clip(np.asarray(coded, dtype=float), -1.0, 1.0)

    def contains(self, natural: Sequence[float]) -> bool:
        """Whether a natural point lies inside the box."""
        return all(
            p.contains(v) for p, v in zip(self.parameters, natural)
        )

    def levels_coded(self, n_levels: int = 3) -> np.ndarray:
        """Evenly spaced coded levels (3 levels -> [-1, 0, 1])."""
        if n_levels < 2:
            raise DesignError("need at least two levels")
        return np.linspace(-1.0, 1.0, n_levels)

    def grid_coded(self, n_levels: int = 3) -> np.ndarray:
        """Full-factorial coded grid, shape (n_levels^k, k)."""
        levels = self.levels_coded(n_levels)
        mesh = np.meshgrid(*[levels] * self.k, indexing="ij")
        return np.stack([m.ravel() for m in mesh], axis=1)

    def parameter(self, name: str) -> Parameter:
        """Look a parameter up by name."""
        for p in self.parameters:
            if p.name == name:
                return p
        raise DesignError(f"no parameter named {name!r}")

    # -- serialisation --------------------------------------------------------

    def to_payload(self) -> dict:
        """Plain-JSON dictionary (``from_payload`` round-trips it).

        This is what lets a :class:`~repro.core.study.StudySpec` carry
        its design space through JSON files and result-store journals.
        """
        return {"parameters": [p.to_payload() for p in self.parameters]}

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ParameterSpace":
        """Rebuild a space from :meth:`to_payload` output."""
        parameters = payload.get("parameters")
        if not parameters:
            raise DesignError("parameter-space payload has no parameters")
        return cls([Parameter.from_payload(p) for p in parameters])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParameterSpace):
            return NotImplemented
        return self.to_payload() == other.to_payload()

    def __hash__(self) -> int:
        return hash(
            tuple(
                (p.name, p.low, p.high, p.coded_symbol, p.unit)
                for p in self.parameters
            )
        )
