"""ANOVA decomposition of a response-surface fit.

Splits the total sum of squares into the part explained by the regression
and the residual, with the F statistic for overall model significance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats

from repro.errors import FitError
from repro.rsm.regression import ols


@dataclass(frozen=True)
class AnovaTable:
    """Classic one-line regression ANOVA."""

    ss_model: float
    ss_residual: float
    ss_total: float
    df_model: int
    df_residual: int
    ms_model: float
    ms_residual: float
    f_statistic: float
    p_value: float

    def to_string(self) -> str:
        """Readable fixed-width table."""
        header = f"{'source':<12}{'SS':>14}{'df':>6}{'MS':>14}{'F':>10}{'p':>10}"
        model = (
            f"{'model':<12}{self.ss_model:>14.4g}{self.df_model:>6}"
            f"{self.ms_model:>14.4g}{self.f_statistic:>10.3f}{self.p_value:>10.4f}"
        )
        resid = (
            f"{'residual':<12}{self.ss_residual:>14.4g}{self.df_residual:>6}"
            f"{self.ms_residual:>14.4g}"
        )
        total = f"{'total':<12}{self.ss_total:>14.4g}{self.df_model + self.df_residual:>6}"
        return "\n".join([header, model, resid, total])


def anova(X: np.ndarray, y: np.ndarray) -> AnovaTable:
    """ANOVA of ``y ~ X`` (X includes the intercept column)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    fit = ols(X, y)
    n, p = X.shape
    ss_total = float(np.sum((y - np.mean(y)) ** 2))
    ss_residual = fit.sse
    ss_model = max(ss_total - ss_residual, 0.0)
    df_model = p - 1
    df_residual = n - p
    if df_model < 1:
        raise FitError("ANOVA needs at least one non-intercept term")
    ms_model = ss_model / df_model
    ms_residual = ss_residual / df_residual if df_residual > 0 else 0.0
    if ms_residual > 0:
        f_stat = ms_model / ms_residual
        p_value = float(stats.f.sf(f_stat, df_model, df_residual))
    else:
        f_stat = float("inf")
        p_value = 0.0
    return AnovaTable(
        ss_model=ss_model,
        ss_residual=ss_residual,
        ss_total=ss_total,
        df_model=df_model,
        df_residual=df_residual,
        ms_model=ms_model,
        ms_residual=ms_residual,
        f_statistic=f_stat,
        p_value=p_value,
    )
