"""Stepwise term selection for response-surface models.

A saturated quadratic fitted to a minimum-size D-optimal design (the
paper's setup) has zero residual degrees of freedom: every coefficient is
"significant" by construction.  When runs are cheap enough to afford a few
extra, dropping negligible terms buys predictive robustness.  This module
implements the two classic greedy searches over the term set:

- :func:`backward_elimination` -- start saturated, repeatedly drop the
  term whose removal improves the selection criterion most;
- :func:`forward_selection` -- start from the intercept, repeatedly add
  the best term.

Criteria: corrected AIC (default) or BIC; both are computed from the
Gaussian log-likelihood of the OLS residuals.  The intercept is always
kept.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FitError
from repro.rsm.basis import PolynomialBasis
from repro.rsm.model import ResponseSurface
from repro.rsm.regression import ols


def _criterion(sse: float, n: int, p: int, kind: str) -> float:
    """Model-selection score (lower is better)."""
    sse = max(sse, 1e-300)
    loglik_term = n * math.log(sse / n)
    if kind == "aic":
        score = loglik_term + 2.0 * p
        # small-sample correction (AICc) when it is defined
        if n - p - 1 > 0:
            score += 2.0 * p * (p + 1) / (n - p - 1)
        return score
    if kind == "bic":
        return loglik_term + p * math.log(n)
    raise FitError(f"unknown selection criterion {kind!r}")


@dataclass
class StepwiseResult:
    """Outcome of a stepwise search."""

    selected: List[int]  # column indices into the full basis expansion
    term_names: List[str]
    coefficients: np.ndarray
    score: float
    history: List[Tuple[str, float]]  # (action, score) log

    def predict(self, basis: PolynomialBasis, points: np.ndarray) -> np.ndarray:
        """Predict at coded points using only the selected terms."""
        X = basis.expand(np.atleast_2d(points))
        return X[:, self.selected] @ self.coefficients


def backward_elimination(
    points_coded: np.ndarray,
    responses: np.ndarray,
    kind: str = "quadratic",
    criterion: str = "aic",
    min_terms: int = 1,
) -> StepwiseResult:
    """Greedy backward search from the saturated model."""
    pts = np.atleast_2d(np.asarray(points_coded, dtype=float))
    y = np.asarray(responses, dtype=float).ravel()
    basis = PolynomialBasis(pts.shape[1], kind)
    X_full = basis.expand(pts)
    names = basis.term_names()
    n = len(y)

    selected = list(range(X_full.shape[1]))
    fit = ols(X_full, y)
    score = _criterion(fit.sse, n, len(selected), criterion)
    history = [("start", score)]

    while len(selected) > max(min_terms, 1):
        best_drop, best_score, best_fit = None, score, None
        for term in selected:
            if term == 0:
                continue  # keep the intercept
            trial = [t for t in selected if t != term]
            try:
                trial_fit = ols(X_full[:, trial], y)
            except FitError:
                continue
            trial_score = _criterion(trial_fit.sse, n, len(trial), criterion)
            if trial_score < best_score - 1e-12:
                best_drop, best_score, best_fit = term, trial_score, trial_fit
        if best_drop is None:
            break
        selected.remove(best_drop)
        score = best_score
        fit = best_fit
        history.append((f"drop {names[best_drop]}", score))

    return StepwiseResult(
        selected=selected,
        term_names=[names[i] for i in selected],
        coefficients=fit.coefficients,
        score=score,
        history=history,
    )


def forward_selection(
    points_coded: np.ndarray,
    responses: np.ndarray,
    kind: str = "quadratic",
    criterion: str = "aic",
    max_terms: Optional[int] = None,
) -> StepwiseResult:
    """Greedy forward search from the intercept-only model."""
    pts = np.atleast_2d(np.asarray(points_coded, dtype=float))
    y = np.asarray(responses, dtype=float).ravel()
    basis = PolynomialBasis(pts.shape[1], kind)
    X_full = basis.expand(pts)
    names = basis.term_names()
    n = len(y)
    limit = X_full.shape[1] if max_terms is None else min(max_terms, X_full.shape[1])

    selected = [0]
    fit = ols(X_full[:, selected], y)
    score = _criterion(fit.sse, n, 1, criterion)
    history = [("start", score)]

    while len(selected) < limit:
        best_add, best_score, best_fit = None, score, None
        for term in range(1, X_full.shape[1]):
            if term in selected:
                continue
            trial = selected + [term]
            if len(trial) > n:
                continue
            try:
                trial_fit = ols(X_full[:, trial], y)
            except FitError:
                continue
            trial_score = _criterion(trial_fit.sse, n, len(trial), criterion)
            if trial_score < best_score - 1e-12:
                best_add, best_score, best_fit = term, trial_score, trial_fit
        if best_add is None:
            break
        selected.append(best_add)
        score = best_score
        fit = best_fit
        history.append((f"add {names[best_add]}", score))

    return StepwiseResult(
        selected=selected,
        term_names=[names[i] for i in selected],
        coefficients=fit.coefficients,
        score=score,
        history=history,
    )
