"""Polynomial term bases for response-surface models.

The paper's eq. (4) is the full quadratic basis

    ``y = b0 + sum(bi xi) + sum(bii xi^2) + sum(bij xi xj)``

with terms ordered intercept, linear, pure quadratic, interactions.  The
library also offers the smaller bases standard RSM practice screens with
and a cubic extension.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence

import numpy as np

from repro.errors import DesignError

KINDS = ("linear", "interaction", "pure_quadratic", "quadratic", "cubic")


class PolynomialBasis:
    """A fixed family of polynomial terms over ``k`` variables.

    Parameters
    ----------
    k:
        Number of design variables.
    kind:
        One of ``linear`` (intercept + linear), ``interaction`` (+ two-way
        products), ``pure_quadratic`` (+ squares, no products),
        ``quadratic`` (eq. 4: + squares + products) or ``cubic``
        (+ cubes and x_i^2 x_j terms).
    """

    def __init__(self, k: int, kind: str = "quadratic"):
        if k < 1:
            raise DesignError("basis: need at least one variable")
        if kind not in KINDS:
            raise DesignError(f"unknown basis kind {kind!r}; choose from {KINDS}")
        self.k = k
        self.kind = kind

    # -- structure -----------------------------------------------------------

    @property
    def n_terms(self) -> int:
        """Number of coefficients in the basis."""
        k = self.k
        pairs = k * (k - 1) // 2
        if self.kind == "linear":
            return 1 + k
        if self.kind == "interaction":
            return 1 + k + pairs
        if self.kind == "pure_quadratic":
            return 1 + 2 * k
        if self.kind == "quadratic":
            return 1 + 2 * k + pairs
        # cubic: quadratic + cubes + x_i^2 x_j (i != j)
        return 1 + 2 * k + pairs + k + k * (k - 1)

    def term_names(self, symbols: Sequence[str] = ()) -> List[str]:
        """Human-readable term labels (default symbols x1..xk)."""
        syms = list(symbols) if symbols else [f"x{i + 1}" for i in range(self.k)]
        if len(syms) != self.k:
            raise DesignError("wrong number of symbols")
        names = ["1"]
        names += syms
        if self.kind in ("pure_quadratic", "quadratic", "cubic"):
            names += [f"{s}^2" for s in syms]
        if self.kind in ("interaction", "quadratic", "cubic"):
            names += [f"{a}*{b}" for a, b in combinations(syms, 2)]
        if self.kind == "cubic":
            names += [f"{s}^3" for s in syms]
            names += [
                f"{syms[i]}^2*{syms[j]}"
                for i in range(self.k)
                for j in range(self.k)
                if i != j
            ]
        return names

    # -- expansion -----------------------------------------------------------

    def expand(self, points: np.ndarray) -> np.ndarray:
        """Expand coded points (n, k) into the design matrix (n, p)."""
        X = np.atleast_2d(np.asarray(points, dtype=float))
        if X.shape[1] != self.k:
            raise DesignError(
                f"points have {X.shape[1]} columns, basis expects {self.k}"
            )
        cols = [np.ones(X.shape[0])]
        cols += [X[:, i] for i in range(self.k)]
        if self.kind in ("pure_quadratic", "quadratic", "cubic"):
            cols += [X[:, i] ** 2 for i in range(self.k)]
        if self.kind in ("interaction", "quadratic", "cubic"):
            cols += [X[:, i] * X[:, j] for i, j in combinations(range(self.k), 2)]
        if self.kind == "cubic":
            cols += [X[:, i] ** 3 for i in range(self.k)]
            cols += [
                X[:, i] ** 2 * X[:, j]
                for i in range(self.k)
                for j in range(self.k)
                if i != j
            ]
        return np.column_stack(cols)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PolynomialBasis(k={self.k}, kind={self.kind!r}, p={self.n_terms})"
