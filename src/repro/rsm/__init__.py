"""Response surface methodology (paper section II).

- :mod:`repro.rsm.coding` -- natural <-> coded variable transforms
  (eq. 3) and the :class:`~repro.rsm.coding.ParameterSpace` container.
- :mod:`repro.rsm.basis` -- polynomial term bases (linear, interaction,
  pure quadratic, full quadratic as in eq. 4, cubic).
- :mod:`repro.rsm.regression` -- least-squares fitting (eqs. 5-7).
- :mod:`repro.rsm.model` -- the fitted :class:`~repro.rsm.model.ResponseSurface`.
- :mod:`repro.rsm.diagnostics` -- R^2, PRESS, VIF and residual summaries
  (the goodness-of-fit assessment the paper omits for space).
- :mod:`repro.rsm.anova` -- ANOVA decomposition of the fit.
- :mod:`repro.rsm.crossval` -- leave-one-out cross-validation.
- :mod:`repro.rsm.registry` -- named surrogate fitters
  (:func:`~repro.rsm.registry.register_surrogate`) for declarative
  studies.
"""

from repro.rsm.anova import AnovaTable, anova
from repro.rsm.basis import PolynomialBasis
from repro.rsm.coding import CodedTransform, Parameter, ParameterSpace
from repro.rsm.crossval import kfold_rmse, loocv_rmse
from repro.rsm.diagnostics import FitDiagnostics, diagnostics
from repro.rsm.model import ResponseSurface, fit_response_surface
from repro.rsm.registry import (
    get_surrogate,
    register_surrogate,
    surrogate_names,
)
from repro.rsm.stepwise import backward_elimination, forward_selection

__all__ = [
    "AnovaTable",
    "CodedTransform",
    "FitDiagnostics",
    "Parameter",
    "ParameterSpace",
    "PolynomialBasis",
    "ResponseSurface",
    "anova",
    "backward_elimination",
    "diagnostics",
    "fit_response_surface",
    "forward_selection",
    "get_surrogate",
    "kfold_rmse",
    "loocv_rmse",
    "register_surrogate",
    "surrogate_names",
]
