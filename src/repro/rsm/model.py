"""The fitted response surface (paper eq. 4 / eq. 9).

:class:`ResponseSurface` couples a polynomial basis with fitted
coefficients over *coded* variables, optionally remembering the
:class:`~repro.rsm.coding.ParameterSpace` so predictions accept natural
units directly.  ``to_string()`` renders the model in the exact shape of
the paper's eq. (9).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import FitError
from repro.rsm.basis import PolynomialBasis
from repro.rsm.coding import ParameterSpace
from repro.rsm.regression import OlsFit, ols


class ResponseSurface:
    """A polynomial model of one response over coded design variables."""

    def __init__(
        self,
        basis: PolynomialBasis,
        coefficients: np.ndarray,
        space: Optional[ParameterSpace] = None,
        fit: Optional[OlsFit] = None,
    ):
        coefficients = np.asarray(coefficients, dtype=float).ravel()
        if len(coefficients) != basis.n_terms:
            raise FitError(
                f"{len(coefficients)} coefficients for a {basis.n_terms}-term basis"
            )
        self.basis = basis
        self.coefficients = coefficients
        self.space = space
        self.fit = fit

    # -- prediction ------------------------------------------------------------

    def predict_coded(self, points: np.ndarray) -> np.ndarray:
        """Predict at coded points (n, k) or a single point (k,)."""
        arr = np.atleast_2d(np.asarray(points, dtype=float))
        values = self.basis.expand(arr) @ self.coefficients
        return values if np.ndim(points) > 1 else float(values[0])

    def predict_natural(self, points: np.ndarray) -> np.ndarray:
        """Predict at natural-unit points (requires a parameter space)."""
        if self.space is None:
            raise FitError("model was fitted without a parameter space")
        return self.predict_coded(self.space.to_coded(points))

    def __call__(self, points: np.ndarray) -> np.ndarray:
        """Alias of :meth:`predict_coded`."""
        return self.predict_coded(points)

    # -- structure -----------------------------------------------------------

    def gradient_coded(self, point: Sequence[float], h: float = 1e-6) -> np.ndarray:
        """Numerical gradient at a coded point (central differences)."""
        x = np.asarray(point, dtype=float)
        grad = np.zeros_like(x)
        for i in range(len(x)):
            e = np.zeros_like(x)
            e[i] = h
            grad[i] = (self.predict_coded(x + e) - self.predict_coded(x - e)) / (
                2.0 * h
            )
        return grad

    def quadratic_parts(self) -> "tuple[float, np.ndarray, np.ndarray]":
        """Decompose a quadratic model as ``b0 + b.x + x.B.x``.

        Returns (intercept, linear vector, symmetric quadratic matrix).
        Only valid for the ``quadratic`` basis kind.
        """
        if self.basis.kind != "quadratic":
            raise FitError("quadratic_parts requires the full quadratic basis")
        k = self.basis.k
        c = self.coefficients
        b0 = float(c[0])
        b = np.array(c[1 : 1 + k])
        B = np.zeros((k, k))
        for i in range(k):
            B[i, i] = c[1 + k + i]
        idx = 1 + 2 * k
        for i in range(k):
            for j in range(i + 1, k):
                B[i, j] = B[j, i] = c[idx] / 2.0
                idx += 1
        return b0, b, B

    def stationary_point(self) -> np.ndarray:
        """Coded stationary point of a quadratic model (``-B^-1 b / 2``).

        May lie outside the [-1, 1] box (then the optimum is on the
        boundary -- exactly why the paper uses global optimisers).
        """
        _, b, B = self.quadratic_parts()
        try:
            return np.linalg.solve(2.0 * B, -b)
        except np.linalg.LinAlgError as exc:
            raise FitError(f"quadratic part is singular: {exc}") from exc

    def to_string(self, symbols: Sequence[str] = (), digits: int = 2) -> str:
        """Render the model like the paper's eq. (9)."""
        names = self.basis.term_names(symbols)
        parts = [f"{self.coefficients[0]:.{digits}f}"]
        for coef, name in zip(self.coefficients[1:], names[1:]):
            sign = "-" if coef < 0 else "+"
            parts.append(f"{sign} {abs(coef):.{digits}f}*{name}")
        return " ".join(parts)


def fit_response_surface(
    points_coded: np.ndarray,
    responses: np.ndarray,
    kind: str = "quadratic",
    space: Optional[ParameterSpace] = None,
) -> ResponseSurface:
    """Fit a polynomial response surface to coded design points.

    Parameters
    ----------
    points_coded:
        (n, k) coded design points.
    responses:
        n observed responses.
    kind:
        Basis kind (see :class:`~repro.rsm.basis.PolynomialBasis`).
    space:
        Optional parameter space enabling natural-unit prediction.
    """
    pts = np.atleast_2d(np.asarray(points_coded, dtype=float))
    basis = PolynomialBasis(pts.shape[1], kind)
    X = basis.expand(pts)
    fit = ols(X, np.asarray(responses, dtype=float))
    return ResponseSurface(basis, fit.coefficients, space=space, fit=fit)
