"""The coordinator's durable partition journal.

A distributed campaign's control state -- which partition is queued,
running on which worker under which remote job id, done, merged,
failed -- lives in the ``coord_runs``/``coord_partitions`` tables of
the coordinator's *local* result store, written through on every
transition.  That makes the coordinator kill-safe the same way
campaigns and studies are: restart it against the same store and
manifest and it resumes from the journal, re-fetching nothing already
merged (result completion is, as everywhere else, derived from the
results table itself; the ``merged`` state just records that a
partition's fetch finished so resume can skip the HTTP round-trip).

On a sharded store the journal lands in the meta shard automatically,
alongside the campaign journals and the job queue.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime, timezone
from time import time as _wall_clock
from typing import List, Optional, Tuple

from repro.errors import ConfigError
from repro.store.db import ResultStore, canonical_json

#: Every state one partition of a coordinated campaign can be in.
#: ``queued -> running -> done -> merged`` is the happy path; ``lost``
#: (worker died, job vanished/failed/stalled) routes back to a
#: resubmission, and ``failed`` is terminal after the attempt budget.
PARTITION_STATES = ("queued", "running", "done", "merged", "failed", "lost")

#: States that still need coordinator work.
ACTIVE_PARTITION_STATES = ("queued", "running", "done", "lost")


@dataclass(frozen=True)
class CoordRun:
    """One journaled distributed-campaign run."""

    name: str
    manifest: dict
    partitions: int
    created_at: str


@dataclass(frozen=True)
class PartitionState:
    """One partition's journaled control state."""

    run: str
    index: int  # 1-based, matching partition_name()
    state: str
    worker: str
    job_id: str
    attempts: int
    rows_merged: int
    error: str
    updated_unix: float

    def summary(self) -> str:
        """One-line human-readable state."""
        bits = [f"p{self.index}: {self.state}"]
        if self.worker:
            bits.append(f"worker={self.worker}")
        if self.attempts:
            bits.append(f"attempts={self.attempts}")
        if self.rows_merged:
            bits.append(f"rows={self.rows_merged}")
        if self.error:
            bits.append(f"error={self.error}")
        return " ".join(bits)


class CoordJournal:
    """Durable run/partition state in a result store's database.

    All writes go through ``BEGIN IMMEDIATE`` transactions like every
    other store table, so a coordinator and a ``coord status`` reader
    (or two racing coordinators) serialise cleanly.
    """

    def __init__(self, store: ResultStore):
        self.store = store

    # -- runs --------------------------------------------------------------------

    def create(self, name: str, manifest: dict, partitions: int) -> bool:
        """Journal run ``name``; returns ``True`` when newly created.

        Re-creating an existing run is fine exactly when manifest and
        partition count match (that is a resume); anything else raises
        :class:`ConfigError` -- partition slices would not line up with
        the journaled ones.
        """
        if not name:
            raise ConfigError("coordinated campaign name must be non-empty")
        if partitions < 1:
            raise ConfigError("partition count must be >= 1")
        manifest_doc = canonical_json(manifest)
        now = datetime.now(timezone.utc)
        conn = self.store._conn()
        existing = None
        conn.execute("BEGIN IMMEDIATE")
        try:
            existing = conn.execute(
                "SELECT manifest, partitions FROM coord_runs WHERE name=?",
                (name,),
            ).fetchone()
            if existing is None:
                conn.execute(
                    "INSERT INTO coord_runs(name, manifest, partitions, "
                    "created_at, created_unix) VALUES (?, ?, ?, ?, ?)",
                    (
                        name,
                        manifest_doc,
                        int(partitions),
                        now.isoformat(),
                        now.timestamp(),
                    ),
                )
                conn.executemany(
                    "INSERT INTO coord_partitions(run, idx, updated_unix) "
                    "VALUES (?, ?, ?)",
                    [
                        (name, index, now.timestamp())
                        for index in range(1, int(partitions) + 1)
                    ],
                )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if existing is None:
            return True
        if existing[0] != manifest_doc or int(existing[1]) != int(partitions):
            raise ConfigError(
                f"coordinated campaign {name!r} already exists in "
                f"{self.store.path} with a different manifest or partition "
                f"count; pick another name or matching arguments to resume"
            )
        return False

    def get(self, name: str) -> Optional[CoordRun]:
        """The journaled run, or ``None``."""
        row = self.store._conn().execute(
            "SELECT name, manifest, partitions, created_at "
            "FROM coord_runs WHERE name=?",
            (name,),
        ).fetchone()
        if row is None:
            return None
        return CoordRun(
            name=row[0],
            manifest=json.loads(row[1]),
            partitions=int(row[2]),
            created_at=row[3],
        )

    def names(self) -> List[str]:
        """Every journaled run name, sorted."""
        return [
            row[0]
            for row in self.store._conn().execute(
                "SELECT name FROM coord_runs ORDER BY name"
            )
        ]

    # -- partitions --------------------------------------------------------------

    _COLUMNS = (
        "run, idx, state, worker, job_id, attempts, rows_merged, "
        "error, updated_unix"
    )

    @staticmethod
    def _row_state(row) -> PartitionState:
        return PartitionState(
            run=row[0],
            index=int(row[1]),
            state=row[2],
            worker=row[3],
            job_id=row[4],
            attempts=int(row[5]),
            rows_merged=int(row[6]),
            error=row[7],
            updated_unix=float(row[8]),
        )

    def partitions(self, name: str) -> List[PartitionState]:
        """Every partition of run ``name``, in index order."""
        return [
            self._row_state(row)
            for row in self.store._conn().execute(
                f"SELECT {self._COLUMNS} FROM coord_partitions "
                f"WHERE run=? ORDER BY idx",
                (name,),
            )
        ]

    def counts(self, name: str) -> dict:
        """Partitions by state (every known state present, zeros kept)."""
        out = {state: 0 for state in PARTITION_STATES}
        for state, count in self.store._conn().execute(
            "SELECT state, COUNT(*) FROM coord_partitions "
            "WHERE run=? GROUP BY state",
            (name,),
        ):
            out[state] = int(count)
        return out

    def update(
        self,
        name: str,
        index: int,
        state: str,
        worker: Optional[str] = None,
        job_id: Optional[str] = None,
        error: Optional[str] = None,
        rows_merged: Optional[int] = None,
        bump_attempts: bool = False,
    ) -> None:
        """Write one partition transition through to disk.

        ``None`` keeps a column's current value; ``bump_attempts``
        increments the attempt counter atomically (set on every
        successful submission).
        """
        if state not in PARTITION_STATES:
            raise ConfigError(
                f"unknown partition state {state!r} "
                f"(known: {', '.join(PARTITION_STATES)})"
            )
        sets = ["state=?", "updated_unix=?"]
        params: List[object] = [state, _wall_clock()]
        for column, value in (
            ("worker", worker),
            ("job_id", job_id),
            ("error", error),
        ):
            if value is not None:
                sets.append(f"{column}=?")
                params.append(str(value))
        if rows_merged is not None:
            sets.append("rows_merged=?")
            params.append(int(rows_merged))
        if bump_attempts:
            sets.append("attempts=attempts+1")
        params.extend([name, int(index)])
        conn = self.store._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            changed = conn.execute(
                f"UPDATE coord_partitions SET {', '.join(sets)} "
                f"WHERE run=? AND idx=?",
                params,
            ).rowcount
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if changed == 0:
            raise ConfigError(
                f"no partition {index} journaled for coordinated "
                f"campaign {name!r} in {self.store.path}"
            )
