"""The distributed campaign coordinator.

:class:`Coordinator` drives one campaign manifest across N remote
``repro-wsn serve`` workers over plain HTTP:

1. **Split.**  The manifest's scenario list is journaled locally as the
   canonical campaign (:meth:`~repro.store.Campaign.create`, seeds
   resolved over the *full* list) and split with the same
   :func:`~repro.store.campaign.partition_scenarios` slicing the
   workers will apply -- so every partition's content keys are exactly
   the single-process campaign's, which is what makes the final store
   byte-identical.
2. **Fan out.**  One ``{"partition": {"index": I, "of": N}}`` campaign
   job per slice is submitted to a healthy worker; per-partition state
   (queued/running/done/merged/failed/lost) is journaled durably in the
   local store (:class:`~repro.coord.journal.CoordJournal`).
3. **Watch.**  Running partitions are polled; a worker that stops
   answering trips its circuit breaker, and a partition whose progress
   stalls past the timeout (or whose job failed/vanished) is marked
   lost and resubmitted to a healthy worker, up to a bounded attempt
   budget.
4. **Stream-merge.**  The moment a partition's remote job is done, its
   result pages are fetched (raw store rows: exact canonical bytes and
   provenance) and imported with the same first-writer-wins /
   divergent-bytes-refuse semantics as ``store merge`` -- results are
   queryable in the local store while other partitions still run, and
   a killed coordinator ``resume()``s with zero re-fetch of merged
   partitions.

The coordinator is deliberately synchronous and single-threaded: one
:meth:`Coordinator.step` pass polls, merges and (re)submits, and
:meth:`Coordinator.run` just loops it -- which keeps every transition
serialised through the journal and makes the tests deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError, CoordinationError
from repro.obs.logging import get_logger
from repro.obs.metrics import metrics as _obs_metrics
from repro.obs.state import STATE as _OBS
from repro.obs.trace import event, span
from repro.coord.journal import CoordJournal, CoordRun, PartitionState
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.store.campaign import (
    Campaign,
    CampaignStatus,
    partition_name,
    partition_slices,
)
from repro.store.db import ResultStore
from repro.store.merge import import_raw_rows
from repro.system.stochastic import manifest_scenarios

#: How often the run loop takes a step when nothing finished yet.
DEFAULT_POLL_INTERVAL_S = 0.5

#: A running partition whose store-derived progress count has not moved
#: for this long is declared lost (covers hung workers *and* jobs
#: queued on a worker whose pool died).
DEFAULT_STALL_TIMEOUT_S = 60.0

#: Submission budget per partition (first attempt included).
DEFAULT_MAX_ATTEMPTS = 3

#: Consecutive unreachable-errors before a worker's breaker opens, and
#: how long it stays open before a half-open retry.
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_COOLDOWN_S = 10.0

#: Result rows fetched (and merged) per HTTP page.
DEFAULT_PAGE_SIZE = 200

_LOG = get_logger("repro.coord")

_PARTITIONS = _obs_metrics().counter(
    "repro_coord_partitions_total",
    "Coordinator partition state transitions",
    ("state",),
)
_RETRIES = _obs_metrics().counter(
    "repro_coord_retries_total",
    "Partition losses by reason (each one feeds a resubmission)",
    ("reason",),
)
_MERGED_ROWS = _obs_metrics().gauge(
    "repro_coord_rows_merged",
    "Result rows stream-merged into the coordinator's store so far",
)


class _Worker:
    """One worker endpoint plus its circuit-breaker state."""

    def __init__(self, url: str, client: ServiceClient):
        self.url = url
        self.client = client
        self.failures = 0
        self.open_until = 0.0  # monotonic

    def healthy(self, now: float) -> bool:
        return self.open_until <= now

    def record_success(self) -> None:
        self.failures = 0
        self.open_until = 0.0

    def record_failure(
        self, now: float, threshold: int, cooldown_s: float
    ) -> bool:
        """Count one unreachable-error; returns ``True`` if the breaker
        is (now) open."""
        self.failures += 1
        if self.failures >= threshold:
            self.open_until = now + cooldown_s
            return True
        return False


@dataclass(frozen=True)
class CoordStatus:
    """Snapshot of one coordinated campaign (journal + local rows)."""

    name: str
    partitions: int
    states: Tuple[PartitionState, ...]
    campaign: Optional[CampaignStatus]

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for state in self.states:
            out[state.state] = out.get(state.state, 0) + 1
        return out

    @property
    def merged(self) -> int:
        return self.counts.get("merged", 0)

    @property
    def complete(self) -> bool:
        return self.merged >= self.partitions

    def summary(self) -> str:
        """Multi-line human-readable report."""
        counts = self.counts
        rest = ", ".join(
            f"{state} {count}"
            for state, count in sorted(counts.items())
            if state != "merged" and count
        )
        lines = [
            f"coordinated campaign {self.name}: "
            f"{self.merged}/{self.partitions} partition(s) merged"
            + (f" ({rest})" if rest else "")
        ]
        if self.campaign is not None:
            lines.append(f"rows: {self.campaign.summary()}")
        lines.extend(f"  {state.summary()}" for state in self.states)
        return "\n".join(lines)


def coord_names(store: ResultStore) -> List[str]:
    """Every coordinated campaign journaled in ``store``, sorted."""
    return CoordJournal(store).names()


def coord_status(store: ResultStore, name: str) -> CoordStatus:
    """Journal-derived status of one coordinated campaign.

    Works with nothing but the local store -- no workers, no manifest
    -- which is what ``repro-wsn coord status`` runs.  Row progress
    comes from the local campaign journal, so a streaming merge is
    visible here while other partitions are still running remotely.
    """
    journal = CoordJournal(store)
    run = journal.get(name)
    if run is None:
        known = ", ".join(journal.names()) or "(none)"
        raise ConfigError(
            f"unknown coordinated campaign {name!r} in {store.path} "
            f"(known: {known})"
        )
    try:
        campaign_state: Optional[CampaignStatus] = Campaign(
            store, name
        ).status()
    except ConfigError:
        campaign_state = None
    return CoordStatus(
        name=name,
        partitions=run.partitions,
        states=tuple(journal.partitions(name)),
        campaign=campaign_state,
    )


class Coordinator:
    """Drive one campaign manifest across remote HTTP workers.

    Parameters
    ----------
    store:
        The local canonical store: campaign journal, coordination
        journal and every stream-merged result row land here.
    manifest:
        A campaign manifest (anything
        :func:`~repro.system.stochastic.manifest_scenarios` accepts).
    workers:
        Base URLs of ``repro-wsn serve`` processes.
    name:
        Campaign name; defaults like the job queue derives it
        (``<family>-n<N>-s<seed>``), and must resolve non-empty.
    partitions:
        Slice count; defaults to ``min(len(workers), len(scenarios))``.
    token:
        Bearer token for the workers (one shared secret).
    deadline_s:
        Optional wall-clock budget for :meth:`run`; ``None`` waits
        as long as it takes (workers may come back).
    client_factory:
        Injection point for the tests: ``factory(url) -> ServiceClient``.
    """

    def __init__(
        self,
        store: ResultStore,
        manifest: dict,
        workers: List[str],
        name: Optional[str] = None,
        partitions: Optional[int] = None,
        token: Optional[str] = None,
        poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
        stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S,
        page_size: int = DEFAULT_PAGE_SIZE,
        deadline_s: Optional[float] = None,
        client_factory: Optional[Callable[[str], ServiceClient]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        worker_urls = [str(url).rstrip("/") for url in workers if str(url).strip()]
        if not worker_urls:
            raise ConfigError("the coordinator needs at least one worker URL")
        if len(set(worker_urls)) != len(worker_urls):
            raise ConfigError("worker URLs must be distinct")
        if max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if stall_timeout_s <= 0:
            raise ConfigError("stall timeout must be positive")
        if not isinstance(manifest, dict):
            raise ConfigError("the campaign manifest must be a JSON object")
        if manifest.get("partition") is not None:
            raise ConfigError(
                "the manifest must not carry its own partition request; "
                "the coordinator assigns partitions"
            )

        self.store = store
        self.manifest = dict(manifest)
        scenarios = manifest_scenarios(self.manifest)
        default = (
            f"{self.manifest['family']}-n{self.manifest.get('n', 1)}"
            f"-s{self.manifest.get('seed', 0)}"
            if self.manifest.get("family")
            else ""
        )
        self.name = str(name or self.manifest.get("name") or default)
        if not self.name:
            raise ConfigError(
                "the coordinated campaign needs a name (pass name=... or "
                "put one in the manifest)"
            )
        self.partitions = int(
            partitions
            if partitions is not None
            else min(len(worker_urls), len(scenarios))
        )
        # Validates 1 <= partitions <= len(scenarios), same as the
        # workers will, and pins down each slice's journal span.
        self._slices = partition_slices(len(scenarios), self.partitions)

        self.poll_interval_s = float(poll_interval_s)
        self.stall_timeout_s = float(stall_timeout_s)
        self.max_attempts = int(max_attempts)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self.page_size = int(page_size)
        self.deadline_s = deadline_s
        self._sleep = sleep

        if client_factory is None:
            def client_factory(url: str) -> ServiceClient:
                # Fail fast: the coordinator owns retry policy at the
                # partition level; one quick transport retry only.
                return ServiceClient(url, token=token, retries=1,
                                     backoff_s=0.2)

        self._workers: Dict[str, _Worker] = {
            url: _Worker(url, client_factory(url)) for url in worker_urls
        }

        # The canonical campaign journal: same seed resolution as
        # partition_scenarios, so partition keys == single-run keys.
        self.campaign = Campaign.create(
            store,
            self.name,
            scenarios,
            source="coordinator",
            exist_ok=True,
        )
        self._keys = [key for key, _ in self.campaign._journal_rows()]
        self.journal = CoordJournal(store)
        created = self.journal.create(self.name, self.manifest, self.partitions)
        self._resumed = not created
        # In-memory stall tracking: remote done-count and when it last
        # moved (monotonic).  Resets on restart; the stall clock simply
        # starts over.
        self._progress: Dict[int, Tuple[int, float]] = {}

    # -- status ------------------------------------------------------------------

    def status(self) -> CoordStatus:
        """Journal + local-row snapshot (what ``coord status`` prints)."""
        return CoordStatus(
            name=self.name,
            partitions=self.partitions,
            states=tuple(self.journal.partitions(self.name)),
            campaign=self.campaign.status(),
        )

    def partition_keys(self, index: int) -> List[str]:
        """Content keys of partition ``index`` (1-based), journal order."""
        start, stop = self._slices[index - 1]
        return self._keys[start:stop]

    # -- driving -----------------------------------------------------------------

    def run(self) -> CoordStatus:
        """Loop :meth:`step` until every partition is merged.

        Raises :class:`CoordinationError` when partitions fail
        terminally (attempt budget exhausted) or the optional deadline
        passes first.  Everything merged so far stays durable either
        way; ``resume()`` continues from the journal.
        """
        started = time.monotonic()
        with span(
            "coord.run", campaign=self.name, partitions=self.partitions
        ) as sp:
            while True:
                status = self.step()
                counts = status.counts
                if status.complete:
                    break
                if counts.get("merged", 0) + counts.get("failed", 0) >= (
                    self.partitions
                ):
                    raise CoordinationError(
                        f"coordinated campaign {self.name}: "
                        f"{counts.get('failed', 0)} partition(s) failed "
                        f"after {self.max_attempts} attempt(s) each; "
                        f"{counts.get('merged', 0)} merged"
                    )
                if (
                    self.deadline_s is not None
                    and time.monotonic() - started > self.deadline_s
                ):
                    raise CoordinationError(
                        f"coordinated campaign {self.name} missed its "
                        f"{self.deadline_s:g} s deadline with partitions "
                        f"still unmerged "
                        f"({', '.join(f'{k} {v}' for k, v in sorted(counts.items()))})"
                    )
                self._sleep(self.poll_interval_s)
            sp.annotate(merged=status.merged)
        _LOG.info(
            "campaign %s complete: %d partition(s) merged",
            self.name, status.merged,
        )
        return status

    def resume(self) -> CoordStatus:
        """Continue from the journal: merged partitions are never
        re-fetched, running ones are re-polled, lost ones resubmitted."""
        return self.run()

    def step(self) -> CoordStatus:
        """One synchronous coordinator pass.

        Polls running partitions, stream-merges finished ones, then
        (re)submits whatever is queued or lost to healthy workers.
        Deterministic and re-entrant: every transition is journaled
        before the next is attempted.
        """
        now = time.monotonic()
        for part in self.journal.partitions(self.name):
            if part.state == "running":
                self._poll_partition(part, now)
        for part in self.journal.partitions(self.name):
            if part.state == "done":
                self._fetch_and_merge(part, now)
        for part in self.journal.partitions(self.name):
            if part.state in ("queued", "lost"):
                self._submit_partition(part, now)
        return self.status()

    # -- transitions -------------------------------------------------------------

    def _transition(self, part: PartitionState, state: str, **fields) -> None:
        self.journal.update(self.name, part.index, state, **fields)
        if _OBS.metrics_on:
            _PARTITIONS.inc(state=state)

    def _mark_lost(self, part: PartitionState, reason: str, detail: str) -> None:
        _LOG.warning(
            "campaign %s partition %d lost (%s): %s",
            self.name, part.index, reason, detail,
        )
        self._transition(part, "lost", error=f"{reason}: {detail}")
        if _OBS.metrics_on:
            _RETRIES.inc(reason=reason)
        event(
            "coord.lost",
            campaign=self.name,
            partition=part.index,
            reason=reason,
        )
        self._progress.pop(part.index, None)

    def _worker_failed(self, worker: _Worker, now: float, detail: str) -> bool:
        opened = worker.record_failure(
            now, self.breaker_threshold, self.breaker_cooldown_s
        )
        if opened:
            _LOG.warning(
                "worker %s unreachable %d time(s); breaker open for %g s (%s)",
                worker.url, worker.failures, self.breaker_cooldown_s, detail,
            )
        return opened

    def _healthy_workers(self, now: float) -> List[_Worker]:
        return [w for w in self._workers.values() if w.healthy(now)]

    def _pick_worker(self, now: float) -> Optional[_Worker]:
        """The healthy worker with the fewest in-flight partitions."""
        healthy = self._healthy_workers(now)
        if not healthy:
            return None
        in_flight: Dict[str, int] = {w.url: 0 for w in healthy}
        for part in self.journal.partitions(self.name):
            if part.state in ("running", "done") and part.worker in in_flight:
                in_flight[part.worker] += 1
        return min(healthy, key=lambda w: (in_flight[w.url], w.url))

    # -- poll --------------------------------------------------------------------

    def _poll_partition(self, part: PartitionState, now: float) -> None:
        worker = self._workers.get(part.worker)
        if worker is None:
            self._mark_lost(
                part, "worker-gone",
                f"{part.worker} is not in this coordinator's worker set",
            )
            return
        if not worker.healthy(now):
            return  # breaker open; re-poll after the cooldown
        with span(
            "coord.poll", campaign=self.name, partition=part.index
        ) as sp:
            try:
                doc = worker.client.job(part.job_id)
            except ServiceUnavailable as exc:
                if self._worker_failed(worker, now, str(exc)):
                    self._mark_lost(part, "worker-dead", str(exc))
                return
            except ServiceError as exc:
                # 404: the worker lost its store (or never had the
                # job); anything else 4xx is equally unrecoverable for
                # this claim.
                self._mark_lost(part, "job-missing", str(exc))
                return
            worker.record_success()
            status = doc.get("status")
            sp.annotate(status=status, done=doc.get("done"))
        if status == "done":
            self._transition(part, "done")
        elif status == "failed":
            self._mark_lost(part, "job-failed", str(doc.get("error")))
        elif status == "cancelled":
            self._mark_lost(part, "job-cancelled", "cancelled on the worker")
        else:  # queued or running on the worker
            done = int(doc.get("done") or 0)
            seen = self._progress.get(part.index)
            if seen is None or done > seen[0]:
                self._progress[part.index] = (done, now)
            elif now - seen[1] > self.stall_timeout_s:
                try:  # best effort: free the claim before resubmitting
                    worker.client.cancel(part.job_id)
                except (ServiceError, ServiceUnavailable):
                    pass
                self._mark_lost(
                    part, "stalled",
                    f"no progress past {done}/{doc.get('total')} for "
                    f"{self.stall_timeout_s:g} s",
                )

    # -- fetch + stream-merge ----------------------------------------------------

    def _fetch_and_merge(self, part: PartitionState, now: float) -> None:
        worker = self._workers.get(part.worker)
        if worker is None:
            self._mark_lost(
                part, "worker-gone",
                f"{part.worker} is not in this coordinator's worker set",
            )
            return
        if not worker.healthy(now):
            return
        merged = 0
        batch: List[tuple] = []

        def _flush() -> None:
            nonlocal merged
            if not batch:
                return
            with span(
                "coord.merge",
                campaign=self.name,
                partition=part.index,
                rows=len(batch),
            ):
                import_raw_rows(self.store, batch, source=worker.url)
            merged += len(batch)
            batch.clear()

        with span(
            "coord.fetch", campaign=self.name, partition=part.index
        ) as sp:
            try:
                for entry in worker.client.iter_results(
                    part.job_id, page_size=self.page_size, raw=True
                ):
                    row = entry.get("row")
                    if row is None:
                        self._mark_lost(
                            part, "rows-missing",
                            f"done job {part.job_id} is missing the row "
                            f"for {entry.get('key')}",
                        )
                        return
                    batch.append(tuple(row))
                    if len(batch) >= self.page_size:
                        _flush()
                _flush()
            except ServiceUnavailable as exc:
                # Stay in 'done': everything imported so far is
                # durable and idempotent; the next step re-fetches.
                self._worker_failed(worker, now, str(exc))
                return
            except ServiceError as exc:
                self._mark_lost(part, "job-missing", str(exc))
                return
            worker.record_success()
            sp.annotate(rows=merged)
        missing = set(self.partition_keys(part.index)) - self.store.have_keys(
            self.partition_keys(part.index)
        )
        if missing:
            self._mark_lost(
                part, "rows-missing",
                f"{len(missing)} journaled key(s) absent after the merge",
            )
            return
        self._transition(part, "merged", rows_merged=merged, error="")
        self._progress.pop(part.index, None)
        if _OBS.metrics_on:
            _MERGED_ROWS.set(self.campaign.status().done)
        event(
            "coord.merged",
            campaign=self.name,
            partition=part.index,
            rows=merged,
            worker=worker.url,
        )
        _LOG.info(
            "campaign %s partition %d merged (%d row(s) from %s)",
            self.name, part.index, merged, worker.url,
        )

    # -- submit ------------------------------------------------------------------

    def _submit_partition(self, part: PartitionState, now: float) -> None:
        if part.attempts >= self.max_attempts:
            self._transition(part, "failed")
            event(
                "coord.failed",
                campaign=self.name,
                partition=part.index,
                attempts=part.attempts,
            )
            return
        if self._resumed and not part.job_id and part.state == "queued":
            # A coordinator killed between submit and journal write may
            # have left the job on some worker; adopt it rather than
            # duplicating the work.
            if self._adopt_existing(part, now):
                return
        worker = self._pick_worker(now)
        if worker is None:
            return  # every breaker is open; wait out a cooldown
        with span(
            "coord.submit",
            campaign=self.name,
            partition=part.index,
            worker=worker.url,
        ) as sp:
            try:
                doc = worker.client.submit(
                    self.manifest,
                    kind="campaign",
                    name=self.name,
                    partition=(part.index, self.partitions),
                )
            except ServiceUnavailable as exc:
                self._worker_failed(worker, now, str(exc))
                return  # stays queued/lost; retried next step
            except ServiceError as exc:
                # The worker *answered* and rejected the manifest: no
                # other worker will accept it either.
                raise CoordinationError(
                    f"worker {worker.url} rejected partition "
                    f"{part.index}/{self.partitions} of campaign "
                    f"{self.name}: {exc}"
                ) from exc
            worker.record_success()
            sp.annotate(job=doc.get("id"))
        self._transition(
            part,
            "running",
            worker=worker.url,
            job_id=str(doc.get("id")),
            bump_attempts=True,
            error="",
        )
        self._progress[part.index] = (0, now)
        event(
            "coord.submit",
            campaign=self.name,
            partition=part.index,
            worker=worker.url,
            job=doc.get("id"),
            attempt=part.attempts + 1,
        )
        _LOG.info(
            "campaign %s partition %d/%d -> %s (job %s, attempt %d)",
            self.name, part.index, self.partitions, worker.url,
            doc.get("id"), part.attempts + 1,
        )

    def _adopt_existing(self, part: PartitionState, now: float) -> bool:
        """Re-attach to a previously submitted partition job, if any."""
        wanted = partition_name(self.name, part.index, self.partitions)
        for worker in self._healthy_workers(now):
            try:
                doc = worker.client.find_job(wanted, kind="campaign")
            except (ServiceError, ServiceUnavailable) as exc:
                self._worker_failed(worker, now, str(exc))
                continue
            worker.record_success()
            if doc is None or doc.get("status") not in (
                "queued", "running", "done",
            ):
                continue
            state = "done" if doc.get("status") == "done" else "running"
            self._transition(
                part,
                state,
                worker=worker.url,
                job_id=str(doc.get("id")),
                bump_attempts=True,
            )
            self._progress[part.index] = (0, now)
            _LOG.info(
                "campaign %s partition %d adopted job %s on %s (%s)",
                self.name, part.index, doc.get("id"), worker.url, state,
            )
            return True
        return False
