"""Distributed campaign coordination over HTTP workers.

The :class:`~repro.coord.coordinator.Coordinator` fans a campaign
manifest's partitions out to remote ``repro-wsn serve`` processes,
journals every partition transition durably in the local store,
retries lost partitions on healthy workers, and stream-merges finished
partitions' raw result rows back into the local canonical store while
the rest still run.  See ``repro-wsn coord run --help`` for the CLI
face and the README's "Distributed campaigns" walkthrough.
"""

from repro.coord.coordinator import (
    CoordStatus,
    Coordinator,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_POLL_INTERVAL_S,
    DEFAULT_STALL_TIMEOUT_S,
    coord_names,
    coord_status,
)
from repro.coord.journal import (
    ACTIVE_PARTITION_STATES,
    CoordJournal,
    CoordRun,
    PARTITION_STATES,
    PartitionState,
)

__all__ = [
    "ACTIVE_PARTITION_STATES",
    "CoordJournal",
    "CoordRun",
    "CoordStatus",
    "Coordinator",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_POLL_INTERVAL_S",
    "DEFAULT_STALL_TIMEOUT_S",
    "PARTITION_STATES",
    "PartitionState",
    "coord_names",
    "coord_status",
]
