"""Detailed mixed-signal co-simulation of the Fig. 2 power path.

This is the SystemC-A-fidelity backend: the electromechanical generator,
diode bridge and supercapacitor are solved cycle-by-cycle by the MNA
transient engine while the node firmware runs as event-driven processes on
the kernel.  Transmissions are *discrete*: the node's equivalent
resistance (eq. 8) switches from 5.8 Mohm to ~167 ohm for each 4.5 ms
active window, pulling a visible notch in the supercapacitor voltage.

The tuning firmware can run here too: :class:`DetailedTuningBackend`
executes the same sans-IO session as the envelope backend, but its
*measurements come from the waveforms* -- frequency from zero crossings of
the generator velocity, phase from the offset between the (analytic)
acceleration zero crossing and the velocity zero crossing.

Integrating 65 Hz oscillations at ~50 points per cycle makes this backend
roughly 10^4 x slower than the envelope model per simulated second; use it
for seconds-long validation runs (the envelope backend exists precisely
because the paper's authors hit the same wall -- their ref [9]).
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.analog.components import VariableResistor
from repro.analog.cosim import CircuitHook
from repro.analog.netlist import Circuit
from repro.control.commands import (
    CheckEnergy,
    GetCurrentPosition,
    MeasureFrequency,
    MeasurePhase,
    MoveActuatorTo,
    Settle,
    StepActuator,
)
from repro.control.runner import ControllerBackend, run_session
from repro.control.session import tuning_session
from repro.errors import SimulationError
from repro.harvester.rectifier import add_diode_bridge
from repro.node.radio import Transmission, TransmissionLog
from repro.rng import SeedLike, ensure_rng
from repro.sim.kernel import Simulator
from repro.sim.process import Delay
from repro.system.components import SystemParts, paper_system
from repro.system.config import SystemConfig
from repro.system.vibration import VibrationProfile


class DetailedSimulator:
    """Cycle-accurate co-simulation of generator, bridge, storage and node."""

    def __init__(
        self,
        config: SystemConfig,
        parts: Optional[SystemParts] = None,
        profile: Optional[VibrationProfile] = None,
        v_init: Optional[float] = None,
        points_per_cycle: int = 50,
        seed: SeedLike = None,
    ):
        self.config = config
        self.parts = parts or paper_system()
        self.profile = profile or VibrationProfile.constant(64.0)
        self.rng = ensure_rng(seed)
        self.policy = self.parts.policy(config.tx_interval_s)
        self.mcu = self.parts.mcu(config.clock_hz)
        self.log = TransmissionLog()

        f_max = max(s.frequency_hz for s in self.profile.segments)
        self._dt = 1.0 / (points_per_cycle * f_max)

        self.circuit = Circuit("wsn-power-path")
        self.generator = self.parts.microgenerator.detailed_component(
            acceleration=self._acceleration, name="GEN"
        )
        self.circuit.add(self.generator)
        add_diode_bridge(self.circuit, "coil_p", "coil_n", "vdc", "0")
        # Bleeders keep the coil nodes well-conditioned while the whole
        # bridge blocks (otherwise they float through gmin alone).
        from repro.analog.components import Resistor

        self.circuit.add(Resistor("RBLEED_P", "coil_p", "0", 10e6))
        self.circuit.add(Resistor("RBLEED_N", "coil_n", "0", 10e6))
        from repro.analog.components import Supercapacitor

        store = self.parts.store
        self._v_init = store.voltage if v_init is None else v_init
        self.supercap = self.circuit.add(
            Supercapacitor(
                "CSTORE",
                "vdc",
                "0",
                capacitance=store.capacitance,
                v0=self._v_init,
            )
        )
        node = self.parts.node
        r_tx, r_sleep = node.equivalent_resistances()
        self._r_tx = r_tx
        self._r_sleep = r_sleep
        self.node_load = self.circuit.add(
            VariableResistor("RNODE", "vdc", "0", r_sleep)
        )
        # MCU standby as a fixed equivalent resistance at the 2.8 V rail.
        mcu_sleep_r = 2.8**2 / max(self.mcu.sleep_power(), 1e-12)
        self.mcu_load = self.circuit.add(
            VariableResistor("RMCU", "vdc", "0", mcu_sleep_r)
        )

        self.system = self.circuit.build()
        self.kernel = Simulator()
        from repro.analog.newton import NewtonOptions

        self.hook = CircuitHook(
            self.system,
            dt=self._dt,
            record=["vdc"],
            newton=NewtonOptions(max_iterations=200, gmin=1e-9),
        )
        self.kernel.attach_analog(self.hook)
        self.kernel.add_process(self._node_process(), name="node-policy")

    # -- waveform inputs -----------------------------------------------------

    def _acceleration(self, t: float) -> float:
        seg = self.profile.at(t)
        return seg.accel_mps2 * math.sin(2.0 * math.pi * seg.frequency_hz * t)

    # -- node firmware ---------------------------------------------------------

    def _node_process(self):
        node = self.parts.node
        tx_time = node.transmission_duration()
        while True:
            v = self.hook.voltage("vdc")
            interval = self.policy.interval(v)
            if interval is None:
                yield Delay(1.0)
                continue
            yield Delay(max(interval - tx_time, 1e-3))
            v = self.hook.voltage("vdc")
            if self.policy.interval(v) is None:
                continue
            self.node_load.resistance = self._r_tx
            yield Delay(tx_time)
            self.node_load.resistance = self._r_sleep
            energy = v * v / self._r_tx * tx_time
            self.log.record(
                Transmission(
                    time=self.kernel.now,
                    supercap_voltage=v,
                    temperature_c=25.0,
                    energy=energy,
                )
            )

    # -- runs ------------------------------------------------------------------

    def run(self, duration: float) -> "DetailedResult":
        """Advance the co-simulation by ``duration`` seconds."""
        if duration <= 0.0:
            raise SimulationError("duration must be positive")
        self.kernel.run(until=self.kernel.now + duration)
        return DetailedResult(self)

    def run_tuning_session(self) -> "DetailedResult":
        """Execute one Algorithm 1 session with waveform-derived measurements."""
        backend = DetailedTuningBackend(self)
        result = run_session(tuning_session(self.parts.lut), backend)
        out = DetailedResult(self)
        out.session = result
        return out

    def supercap_voltage(self) -> float:
        """Present storage terminal voltage."""
        return self.hook.voltage("vdc")


class DetailedResult:
    """Snapshot of a detailed run: traces and transmission log."""

    def __init__(self, sim: DetailedSimulator):
        self.config = sim.config
        self.traces = sim.hook.traces
        self.transmissions = sim.log.count
        self.final_voltage = sim.supercap_voltage()
        self.time = sim.kernel.now
        self.session = None
        capacitance = sim.parts.store.capacitance
        self._initial_stored = 0.5 * capacitance * sim._v_init**2
        self._final_stored = 0.5 * capacitance * self.final_voltage**2
        self._tx_energy = sim.log.total_energy

    def to_system_result(self):
        """Adapt this snapshot to the backend-independent result type.

        Only the quantities the detailed model actually tracks are filled
        in: the transmission count/energy, the storage book-ends and the
        waveform traces.  The fine-grained sleep/MCU split of the envelope
        audit has no counterpart here (those loads are resistors inside
        the MNA solve), so the breakdown is *not* balanced.
        """
        from repro.system.result import EnergyBreakdown, SystemResult

        breakdown = EnergyBreakdown(
            initial_stored=self._initial_stored,
            final_stored=self._final_stored,
            node_tx=self._tx_energy,
        )
        if "v(vdc)" in self.traces and "v_store" not in self.traces:
            self.traces.alias("v_store", "v(vdc)")
        return SystemResult(
            config=self.config,
            horizon=self.time,
            transmissions=self.transmissions,
            breakdown=breakdown,
            traces=self.traces,
            final_voltage=self.final_voltage,
        )


class DetailedTuningBackend(ControllerBackend):
    """Algorithm 1 backend whose measurements come from the waveforms."""

    def __init__(self, sim: DetailedSimulator):
        self.sim = sim

    # -- helpers --------------------------------------------------------------

    def _advance(self, duration: float) -> None:
        self.sim.kernel.run(until=self.sim.kernel.now + duration)

    def _velocity_zero_crossings(self, duration: float) -> List[float]:
        """Advance while recording rising zero crossings of the mass velocity."""
        crossings: List[float] = []
        gen = self.sim.generator
        hook = self.sim.hook
        last = gen.velocity(hook.x)
        t_end = self.sim.kernel.now + duration
        while self.sim.kernel.now < t_end - 1e-12:
            step = min(self.sim._dt * 2.0, t_end - self.sim.kernel.now)
            self.sim.kernel.run(until=self.sim.kernel.now + step)
            now_v = gen.velocity(hook.x)
            if last <= 0.0 < now_v:
                # Linear interpolation of the crossing instant.
                frac = -last / (now_v - last) if now_v != last else 0.0
                crossings.append(self.sim.kernel.now - step * (1.0 - frac))
            last = now_v
        return crossings

    # -- ControllerBackend ------------------------------------------------------

    def check_energy(self, cmd: CheckEnergy) -> bool:
        return self.sim.supercap_voltage() >= cmd.threshold

    def measure_frequency(self, cmd: MeasureFrequency) -> float:
        f_nominal = self.sim.profile.frequency(self.sim.kernel.now)
        window = 10.0 / f_nominal  # a little over 8 cycles
        crossings = self._velocity_zero_crossings(window)
        if len(crossings) < 2:
            return 0.0
        n = min(len(crossings) - 1, 8)
        span = crossings[n] - crossings[0]
        measured = n / span if span > 0 else 0.0
        # Timer quantisation of the real firmware still applies.
        return self.sim.mcu.timer.measure_frequency(measured, 8, self.sim.rng)

    def get_position(self, cmd: GetCurrentPosition) -> int:
        return int(round(self.sim.parts.microgenerator.position))

    def _retune_generator(self) -> None:
        micro = self.sim.parts.microgenerator
        self.sim.generator.stiffness = micro.tuning_map.stiffness(micro.position)

    def move_actuator_to(self, cmd: MoveActuatorTo) -> int:
        move = self.sim.parts.microgenerator.actuator.move_to_position(cmd.position)
        if move.duration > 0.0:
            self._advance(move.duration)
        self._retune_generator()
        return move.steps

    def step_actuator(self, cmd: StepActuator) -> int:
        move = self.sim.parts.microgenerator.actuator.move_steps(cmd.direction)
        if move.duration > 0.0:
            self._advance(move.duration)
        self._retune_generator()
        return move.steps

    def settle(self, cmd: Settle) -> None:
        self._advance(cmd.duration)

    def measure_phase(self, cmd: MeasurePhase) -> float:
        """Offset between the accelerometer and generator zero crossings.

        In the relative coordinate the steady-state velocity is *anti*-phase
        with the base acceleration at resonance (the forcing is ``-m a``),
        so the natural reference is the *falling* zero crossing of
        ``a(t) = A sin(2 pi f t)`` at ``t = (k + 1/2)/f``.  The wrapped
        offset is negated so the returned sign follows the MeasurePhase
        convention (positive = resonance above the excitation), matching
        the envelope backend.
        """
        t_now = self.sim.kernel.now
        seg = self.sim.profile.at(t_now)
        f = seg.frequency_hz
        period = 1.0 / f
        crossings = self._velocity_zero_crossings(3.0 * period)
        if not crossings:
            return 0.0
        t_v = crossings[0]
        # Falling zero crossings of a(t) occur at (k + 1/2) periods.
        k = round(t_v * f - 0.5)
        t_a = (k + 0.5) / f
        delta = t_v - t_a
        while delta > period / 2.0:
            delta -= period
        while delta < -period / 2.0:
            delta += period
        delta = -delta  # MeasurePhase sign convention (see docstring).
        return self.sim.mcu.timer.measure_interval(abs(delta), self.sim.rng) * (
            1.0 if delta >= 0 else -1.0
        )
