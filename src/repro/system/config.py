"""System configuration: the three optimisation parameters (Table V).

==============================  ===============  =============
Description                     Value range      Coded symbol
==============================  ===============  =============
Microcontroller clock (Hz)      125 k - 8 M      x1
Watchdog wake-up period (s)     60 - 600         x2
Transmission interval (s)       0.005 - 10       x3
==============================  ===============  =============

The original design (Table VI, first column) is 4 MHz / 320 s / 5 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.rsm.coding import Parameter, ParameterSpace

#: Table V ranges.
CLOCK_RANGE_HZ = (125e3, 8e6)
WATCHDOG_RANGE_S = (60.0, 600.0)
TX_INTERVAL_RANGE_S = (0.005, 10.0)


@dataclass(frozen=True)
class SystemConfig:
    """One operating point of the node firmware.

    Parameters
    ----------
    clock_hz:
        Microcontroller clock frequency.
    watchdog_s:
        Watchdog wake-up period (Algorithm 1, step 2).
    tx_interval_s:
        Transmission interval when the supercap is above 2.8 V (Table II).
    """

    clock_hz: float = 4e6
    watchdog_s: float = 320.0
    tx_interval_s: float = 5.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0.0:
            raise ConfigError("clock frequency must be > 0")
        if self.watchdog_s <= 0.0:
            raise ConfigError("watchdog period must be > 0")
        if self.tx_interval_s <= 0.0:
            raise ConfigError("transmission interval must be > 0")

    def as_vector(self) -> "list[float]":
        """Natural-units vector in Table V order."""
        return [self.clock_hz, self.watchdog_s, self.tx_interval_s]

    @staticmethod
    def from_vector(values: Sequence[float]) -> "SystemConfig":
        """Build a config from a Table V-ordered natural vector."""
        if len(values) != 3:
            raise ConfigError(f"expected 3 values, got {len(values)}")
        return SystemConfig(
            clock_hz=float(values[0]),
            watchdog_s=float(values[1]),
            tx_interval_s=float(values[2]),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"clock={self.clock_hz / 1e6:g} MHz, watchdog={self.watchdog_s:g} s, "
            f"tx_interval={self.tx_interval_s:g} s"
        )


#: The paper's original design (Table VI).
ORIGINAL_DESIGN = SystemConfig(clock_hz=4e6, watchdog_s=320.0, tx_interval_s=5.0)


def paper_parameter_space() -> ParameterSpace:
    """The Table V design space with the paper's coded symbols."""
    return ParameterSpace(
        [
            Parameter("clock_hz", *CLOCK_RANGE_HZ, coded_symbol="x1", unit="Hz"),
            Parameter("watchdog_s", *WATCHDOG_RANGE_S, coded_symbol="x2", unit="s"),
            Parameter(
                "tx_interval_s", *TX_INTERVAL_RANGE_S, coded_symbol="x3", unit="s"
            ),
        ]
    )


def config_from_coded(coded: Sequence[float]) -> SystemConfig:
    """Coded [-1, 1]^3 point -> :class:`SystemConfig` (clipped to bounds)."""
    space = paper_parameter_space()
    natural = space.to_natural(space.clip_coded(list(coded)))
    return SystemConfig.from_vector(list(natural))
