"""Whole-system model of the harvester-powered wireless sensor node.

- :mod:`repro.system.config` -- the three optimisation parameters
  (Table V) and the canonical parameter space.
- :mod:`repro.system.vibration` -- input vibration profiles (the paper's
  evaluation uses 60 mg with +5 Hz steps every 25 minutes).
- :mod:`repro.system.stochastic` -- Markov regime-switching vibration
  generators and the scenario-family machinery (imported lazily; not
  re-exported here to keep ``repro.system`` import-light).
- :mod:`repro.system.components` -- Table I component registry and the
  calibrated default system (microgenerator, storage, node, MCU).
- :mod:`repro.system.envelope` -- the fast energy-balance simulator used
  for hour-long DSE runs (the paper's accelerated simulation).
- :mod:`repro.system.detailed` -- MNA co-simulation backend for short,
  high-fidelity runs.
- :mod:`repro.system.result` -- run results and the energy audit.
"""

from repro.system.components import (
    COMPONENT_REGISTRY,
    SystemParts,
    paper_system,
)
from repro.system.config import (
    ORIGINAL_DESIGN,
    SystemConfig,
    paper_parameter_space,
)
from repro.system.envelope import EnvelopeSimulator
from repro.system.result import EnergyBreakdown, SystemResult
from repro.system.vibration import VibrationProfile

__all__ = [
    "COMPONENT_REGISTRY",
    "EnergyBreakdown",
    "EnvelopeSimulator",
    "ORIGINAL_DESIGN",
    "SystemConfig",
    "SystemParts",
    "SystemResult",
    "VibrationProfile",
    "paper_parameter_space",
    "paper_system",
]
