"""Fast energy-balance system simulator (the accelerated backend).

Reproduces the role of the paper's linearised accelerated simulation
(their ref [9]): hour-long runs of the complete Fig. 2 system at
control-system timescales instead of vibration timescales.

Mechanics
---------
The storage energy obeys ``dE/dt = P_harvest(V) - P_sleep - P_tx(V)``
with the harvest power given by the analytic steady-state envelope
(:class:`repro.harvester.envelope.EnvelopeHarvester`) and transmissions
treated as a continuous drain at the policy's rate.  The integrator:

- clamps steps at vibration-profile changes (piecewise-constant inputs),
- lands steps *exactly* on the policy thresholds (2.7 / 2.8 V), and
- resolves the chattering at a threshold where the upper band drains
  faster than harvest but the lower band does not as a **sliding mode**:
  the voltage pins to the threshold and transmissions proceed at exactly
  the energy-limited rate -- which is the physically averaged behaviour
  of a node bursting every 5 ms against a 0.55 F capacitor, and the
  mechanism behind the paper's optimised configurations.

The tuning firmware (Algorithms 1-3) runs unmodified through the
sans-IO command protocol; every command advances this same integrator,
so the node keeps transmitting while the actuator settles.
"""

from __future__ import annotations

import bisect
import math
import time
from typing import List, Optional

from repro.control.commands import (
    CheckEnergy,
    GetCurrentPosition,
    MeasureFrequency,
    MeasurePhase,
    MoveActuatorTo,
    Settle,
    StepActuator,
)
from repro.control.runner import ControllerBackend, run_session
from repro.control.session import tuning_session
from repro.digital.watchdog import WatchdogTimer
from repro.errors import SimulationError
from repro.node.radio import TransmissionLog
from repro.obs.metrics import metrics as _obs_metrics
from repro.obs.state import STATE as _OBS
from repro.obs.trace import span
from repro.rng import SeedLike, ensure_rng
from repro.sim.trace import TraceSet
from repro.system.components import SystemParts, paper_system
from repro.system.config import SystemConfig
from repro.system.result import EnergyBreakdown, SystemResult, TuningEvent
from repro.system.vibration import VibrationProfile

#: Voltage tolerance for "sitting on a threshold".
_V_EPS = 1e-7
#: Relative time tolerance of the integrator.
_T_EPS = 1e-9

#: Simulation-run telemetry (shared series with the vectorized backend,
#: which registers the same counter under ``backend="vectorized"``).
_SIM_RUNS = _obs_metrics().counter(
    "repro_sim_runs_total",
    "Completed simulation runs per backend",
    ("backend",),
)
_TUNING_SESSIONS = _obs_metrics().counter(
    "repro_sim_tuning_sessions_total",
    "Algorithm 1 tuning sessions executed",
)
_SESSION_SECONDS = _obs_metrics().histogram(
    "repro_sim_session_seconds",
    "Wall time per tuning session",
)
_POWER_EVALS = _obs_metrics().counter(
    "repro_harvester_power_evals_total",
    "Analytic charging-power evaluations served by the harvester",
)


class EnvelopeSimulator(ControllerBackend):
    """Hour-scale simulator of the complete sensor-node system."""

    def __init__(
        self,
        config: SystemConfig,
        parts: Optional[SystemParts] = None,
        profile: Optional[VibrationProfile] = None,
        seed: SeedLike = None,
        dt_max: float = 2.0,
        record_traces: bool = True,
    ):
        if dt_max <= 0.0:
            raise SimulationError("dt_max must be positive")
        self.config = config
        self.parts = parts or paper_system()
        self.profile = profile or VibrationProfile.paper_profile()
        self.rng = ensure_rng(seed)
        self.dt_max = dt_max
        self.record_traces = record_traces

        self.micro = self.parts.microgenerator
        self.store = self.parts.store
        self.node = self.parts.node
        self.mcu = self.parts.mcu(config.clock_hz)
        self.policy = self.parts.policy(config.tx_interval_s)
        self.watchdog = WatchdogTimer(config.watchdog_s)

        self.t = 0.0
        self.breakdown = EnergyBreakdown(initial_stored=self.store.energy)
        self.log = TransmissionLog(keep_records=False)
        self.traces = TraceSet()
        self.tuning_events: List[TuningEvent] = []
        self._change_times = [s.t_start for s in self.profile.segments]
        self._session_active = False
        self._trace_point()

    # ------------------------------------------------------------------ run

    def run(self, horizon: float = 3600.0) -> SystemResult:
        """Simulate until ``horizon`` seconds (sessions may finish late)."""
        if horizon <= 0.0:
            raise SimulationError("horizon must be positive")
        evals_before = self.micro.envelope.power_evals
        with span("sim.envelope.run", horizon=horizon) as run_span:
            while True:
                t_wake = self.watchdog.next_wakeup(self.t)
                if t_wake >= horizon:
                    self._integrate_until(horizon)
                    break
                self._integrate_until(t_wake)
                self._run_wakeup()
            run_span.annotate(
                sessions=len(self.tuning_events),
                transmissions=self.log.count,
            )
        if _OBS.metrics_on:
            _SIM_RUNS.inc(backend="envelope")
            _POWER_EVALS.inc(self.micro.envelope.power_evals - evals_before)
        self.breakdown.final_stored = self.store.energy
        self.breakdown.clipped = self.store.clipped_energy
        return SystemResult(
            config=self.config,
            horizon=self.t,
            transmissions=self.log.count,
            breakdown=self.breakdown,
            traces=self.traces,
            tuning_events=self.tuning_events,
            final_voltage=self.store.voltage,
            final_position=self.micro.position,
        )

    def _run_wakeup(self) -> None:
        """Execute one Algorithm 1 session at the current time."""
        t0 = self.t
        e0 = self.breakdown.consumed
        wall0 = time.perf_counter() if _OBS.metrics_on else 0.0
        self._session_active = True
        try:
            result = run_session(tuning_session(self.parts.lut), self)
        finally:
            self._session_active = False
        if _OBS.metrics_on:
            _TUNING_SESSIONS.inc()
            _SESSION_SECONDS.observe(time.perf_counter() - wall0)
        self.tuning_events.append(
            TuningEvent(
                time=t0,
                result=result,
                duration=self.t - t0,
                energy=self.breakdown.consumed - e0,
            )
        )

    # ------------------------------------------------- continuous integration

    def _integrate_until(self, t_target: float) -> None:
        """Advance the energy balance to ``t_target``."""
        guard = 0
        while self.t < t_target - _T_EPS:
            guard += 1
            if guard > 50_000_000:  # pragma: no cover - runaway protection
                raise SimulationError("envelope integrator failed to advance")
            dt_cap = min(self.dt_max, t_target - self.t)
            dt_cap = self._clamp_to_profile_change(dt_cap)
            v = self.store.voltage
            p_h = self._harvest_power(v)
            p_sleep = self._sleep_power(v)

            threshold = self._threshold_at(v)
            if threshold is not None:
                advanced = self._threshold_step(threshold, v, p_h, p_sleep, dt_cap)
                if advanced:
                    continue

            self._band_step(v, p_h, p_sleep, dt_cap)

    def _clamp_to_profile_change(self, dt_cap: float) -> float:
        idx = bisect.bisect_right(self._change_times, self.t + _T_EPS)
        if idx < len(self._change_times):
            dt_cap = min(dt_cap, self._change_times[idx] - self.t)
        return max(dt_cap, _T_EPS)

    def _threshold_at(self, v: float) -> Optional[float]:
        for thr in (self.policy.v_off, self.policy.v_fast):
            if abs(v - thr) < _V_EPS:
                return thr
        return None

    def _threshold_step(
        self, thr: float, v: float, p_h: float, p_sleep: float, dt_cap: float
    ) -> bool:
        """Handle a step starting exactly on a policy threshold.

        Returns True if it advanced time (sliding); False if the caller
        should take a plain band step (moving cleanly off the threshold).
        """
        drain_up = self._tx_drain(thr + _V_EPS, v)
        drain_lo = self._tx_drain(thr - _V_EPS, v)
        p_up = p_h - p_sleep - drain_up
        p_lo = p_h - p_sleep - drain_lo
        if p_up >= 0.0 or p_lo <= 0.0:
            return False  # moves cleanly up or down: plain step handles it
        # Sliding mode: pin the voltage, transmit at the energy-limited mix.
        lam = p_lo / (p_lo - p_up)
        rate = lam * self.policy.rate(thr + _V_EPS) + (1.0 - lam) * self.policy.rate(
            thr - _V_EPS
        )
        drain = lam * drain_up + (1.0 - lam) * drain_lo
        dt = dt_cap
        self._apply_flows(dt, p_h, p_sleep, drain, rate * dt, v)
        return True

    def _band_step(self, v: float, p_h: float, p_sleep: float, dt_cap: float) -> None:
        """One plain integration step inside (or leaving) a policy band."""
        at_thr = self._threshold_at(v)
        if at_thr is None:
            v_eval = v
        else:
            # On a threshold but not sliding: pick the band we are moving
            # into (up if the upper band gains energy, down otherwise).
            p_up = p_h - p_sleep - self._tx_drain(at_thr + _V_EPS, v)
            v_eval = at_thr + _V_EPS if p_up >= 0.0 else at_thr - _V_EPS

        drain = self._tx_drain(v_eval, v)
        rate = self.policy.rate(v_eval)
        p_net = p_h - p_sleep - drain
        dt = dt_cap

        # Land exactly on the next threshold in the direction of travel.
        if p_net > 0.0:
            for thr in (self.policy.v_off, self.policy.v_fast):
                if v < thr - _V_EPS:
                    dt_cross = self._time_to_voltage(thr, p_net)
                    if dt_cross is not None and dt_cross < dt:
                        dt = dt_cross
                    break
        elif p_net < 0.0:
            for thr in (self.policy.v_fast, self.policy.v_off):
                if v > thr + _V_EPS:
                    dt_cross = self._time_to_voltage(thr, p_net)
                    if dt_cross is not None and dt_cross < dt:
                        dt = dt_cross
                    break

        dt = max(dt, _T_EPS)
        self._apply_flows(dt, p_h, p_sleep, drain, rate * dt, v)

    def _time_to_voltage(self, v_target: float, p_net: float) -> Optional[float]:
        e_target = 0.5 * self.store.capacitance * v_target * v_target
        delta = e_target - self.store.energy
        if p_net == 0.0:
            return None
        dt = delta / p_net
        return dt if dt > 0.0 else None

    def _apply_flows(
        self,
        dt: float,
        p_h: float,
        p_sleep: float,
        p_tx: float,
        n_tx: float,
        v: float,
    ) -> None:
        """Move energy for one accepted step and advance time."""
        deposited = self.store.deposit(p_h * dt)
        self.breakdown.harvested += deposited

        node_sleep = self.node.sleep_power(v) * dt
        mcu_sleep = self.mcu.sleep_power() * dt
        self._draw(node_sleep, "node_sleep")
        self._draw(mcu_sleep, "mcu_sleep")
        if p_tx > 0.0:
            tx_energy = p_tx * dt
            self._draw(tx_energy, "node_tx")
            self.log.accumulate(n_tx, self.t + dt, v, tx_energy)

        self.t += dt
        self._trace_point()

    def _draw(self, energy: float, bucket: str) -> None:
        if energy <= 0.0:
            return
        supplied = self.store.draw(energy)
        setattr(self.breakdown, bucket, getattr(self.breakdown, bucket) + energy)
        if supplied < energy:
            self.breakdown.shortfall += energy - supplied

    # ----------------------------------------------------------- power terms

    def _harvest_power(self, v: float) -> float:
        return self.micro.charging_power(
            self.profile.frequency(self.t), self.profile.acceleration(self.t), v
        )

    def _sleep_power(self, v: float) -> float:
        return self.node.sleep_power(v) + self.mcu.sleep_power()

    def _tx_drain(self, v_band: float, v_actual: float) -> float:
        """Average transmission power with the band chosen at ``v_band``."""
        return self.policy.drain_rate(v_band, self.node.transmission_energy(v_actual))

    # ------------------------------------------------------------- tracing

    def _trace_point(self) -> None:
        if not self.record_traces:
            return
        v = self.store.voltage
        self.traces.trace("v_store").append(self.t, v)
        self.traces.trace("harvest_power").append(self.t, self._harvest_power(v))
        self.traces.trace("position").append(self.t, self.micro.position)
        self.traces.trace("input_frequency").append(
            self.t, self.profile.frequency(self.t)
        )

    # ----------------------------------------- ControllerBackend interface

    def check_energy(self, cmd: CheckEnergy) -> bool:
        cost = self.mcu.busy(2e-3)
        self._draw(cost.mcu_energy, "mcu_active")
        return self.store.voltage >= cmd.threshold

    def measure_frequency(self, cmd: MeasureFrequency) -> float:
        f_true = self.profile.frequency(self.t)
        m = self.mcu.measure_frequency(f_true, self.rng)
        self._integrate_until(self.t + m.duration)
        self._draw(m.mcu_energy, "mcu_active")
        return m.value

    def get_position(self, cmd: GetCurrentPosition) -> int:
        cost = self.mcu.busy(1e-3)
        self._draw(cost.mcu_energy, "mcu_active")
        return int(round(self.micro.position))

    def move_actuator_to(self, cmd: MoveActuatorTo) -> int:
        move = self.micro.actuator.move_to_position(cmd.position)
        if move.duration > 0.0:
            busy = self.mcu.busy(move.duration)
            self._integrate_until(self.t + move.duration)
            self._draw(busy.mcu_energy, "mcu_active")
            self._draw(move.energy, "actuator")
        return move.steps

    def step_actuator(self, cmd: StepActuator) -> int:
        move = self.micro.actuator.move_steps(cmd.direction)
        if move.duration > 0.0:
            busy = self.mcu.busy(move.duration)
            self._integrate_until(self.t + move.duration)
            self._draw(busy.mcu_energy, "mcu_active")
            self._draw(move.energy, "actuator")
        return move.steps

    def settle(self, cmd: Settle) -> None:
        self._integrate_until(self.t + cmd.duration)

    def measure_phase(self, cmd: MeasurePhase) -> float:
        resonator = self.micro.tuning_map.resonator_at(self.micro.position)
        true_phase = resonator.phase_difference_seconds(
            self.profile.frequency(self.t)
        )
        m = self.mcu.measure_phase(true_phase, self.rng)
        self._integrate_until(self.t + m.duration)
        self._draw(m.mcu_energy, "mcu_active")
        self._draw(m.peripheral_energy, "accelerometer")
        return m.value


def simulate(
    config: SystemConfig,
    horizon: float = 3600.0,
    seed: SeedLike = None,
    parts: Optional[SystemParts] = None,
    profile: Optional[VibrationProfile] = None,
    record_traces: bool = True,
) -> SystemResult:
    """One-call envelope simulation of a configuration."""
    sim = EnvelopeSimulator(
        config, parts=parts, profile=profile, seed=seed, record_traces=record_traces
    )
    return sim.run(horizon)
