"""NumPy-vectorized batch envelope simulation (the SIMD backend).

Every batch workload in the library -- Fig. 4 sweeps, Monte Carlo
families, campaigns, studies -- bottoms out in the scalar
:class:`~repro.system.envelope.EnvelopeSimulator`, one scenario at a
time.  This module advances a whole *batch* of scenarios in lockstep
instead: the per-scenario continuous state (time, stored energy, energy
accounts, transmission counters) lives in ``(n_scenarios,)`` NumPy
arrays and every integration step is a handful of elementwise array
operations, so the Python interpreter cost of a step is paid once per
batch rather than once per scenario.

Semantics
---------
The engine is a *re-expression*, not a re-modelling, of the envelope
integrator: per scenario it performs exactly the arithmetic of
``EnvelopeSimulator._integrate_until`` (``dE/dt = P_harvest(V) -
P_sleep - P_tx(V)``, steps clamped at vibration-profile changes, exact
landings on the 2.7 / 2.8 V policy thresholds, sliding-mode pinning at
a threshold) in the same operation order, so results agree with the
scalar backend to the last bit on every platform where NumPy's
elementwise kernels are IEEE-correctly rounded (the differential suite
in ``tests/differential/`` machine-checks the agreement with explicit
tolerance envelopes rather than assuming it).

**Tuning sessions** (Algorithm 1 wake-ups) are interleaved with the
lockstep integration rather than excursions into the scalar simulator:
each lane pumps its own sans-IO :func:`~repro.control.session.tuning_session`
generator, command effects (RNG measurement draws, actuator moves, MCU
energy draws) run scalar per lane in exactly the scalar backend's
operation order, but the *time* every command spans -- measurement
windows, 5 s settling waits, actuator travel -- is integrated as masked
array steps shared with every other lane.  A wave of watchdog wake-ups
across a big batch therefore costs one set of array steps, not one
scalar integration per lane, while each lane's per-scenario RNG stream,
traces and tuning log stay byte-identical to a scalar run.

**Harvest coefficients** (EMF peak, rectifier ceiling, mechanical power
limit) are re-derived scalar per lane -- through the same ``math`` calls
as the scalar harvester, with the position-dependent resonator constants
cached per (tuning map, position) -- whenever a lane enters a new
vibration segment or moves its actuator.  They are constant in between,
which is what makes the hot loop pure array math.

NumPy is an optional dependency of this backend: :func:`require_numpy`
raises a :class:`~repro.errors.ConfigError` naming the ``[vectorized]``
extra when the import is unavailable (or when the
``REPRO_DISABLE_NUMPY`` environment variable simulates its absence, the
hook the no-NumPy CI leg uses).
"""

from __future__ import annotations

import bisect
import gc
import math
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via REPRO_DISABLE_NUMPY in tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.control.commands import (
    CheckEnergy,
    GetCurrentPosition,
    MeasureFrequency,
    MeasurePhase,
    MoveActuatorTo,
    Settle,
    StepActuator,
)
from repro.control.runner import _result_of
from repro.control.session import tuning_session
from repro.errors import ConfigError, SimulationError
from repro.obs.metrics import metrics as _obs_metrics
from repro.obs.state import STATE as _OBS
from repro.obs.trace import span
from repro.scenario import PartsSpec, Scenario
from repro.system.components import (
    SystemParts,
    paper_lut,
    paper_system,
    paper_tuning_map,
)
from repro.system.envelope import (
    _SESSION_SECONDS,
    _T_EPS,
    _TUNING_SESSIONS,
    _V_EPS,
    EnvelopeSimulator,
)
from repro.system.result import SystemResult, TuningEvent

#: Environment variable that simulates a missing NumPy installation
#: (set by the no-NumPy CI leg; see :func:`require_numpy`).
DISABLE_ENV_VAR = "REPRO_DISABLE_NUMPY"

#: Simulation-run telemetry shared with the scalar backend: one count
#: per completed scenario, labelled by the backend that produced it.
_SIM_RUNS = _obs_metrics().counter(
    "repro_sim_runs_total",
    "Completed simulation runs per backend",
    ("backend",),
)

#: Same runaway-protection bound as the scalar integrator.  The scalar
#: guard resets per ``_integrate_until`` call (one inter-event stretch);
#: the engine mirrors that by resetting whenever an event (wake-up or
#: finalisation) is processed, so legitimately long runs never trip it.
_MAX_ITERATIONS = 50_000_000


def numpy_available() -> bool:
    """Whether the vectorized backend can run in this process."""
    return np is not None and not os.environ.get(DISABLE_ENV_VAR)


def require_numpy():
    """Return the ``numpy`` module or raise a helpful ConfigError."""
    if os.environ.get(DISABLE_ENV_VAR):
        raise ConfigError(
            "the 'vectorized' backend needs NumPy, which is disabled in "
            f"this environment ({DISABLE_ENV_VAR} is set); install the "
            "'vectorized' extra (pip install repro-wsn[vectorized]) or "
            "pick another backend (e.g. 'envelope')"
        )
    if np is None:  # pragma: no cover - numpy is present in the test env
        raise ConfigError(
            "the 'vectorized' backend needs NumPy; install the "
            "'vectorized' extra (pip install repro-wsn[vectorized]) or "
            "pick another backend (e.g. 'envelope')"
        )
    return np


# -- shared physics ----------------------------------------------------------

#: Process-wide (tuning map, LUT) pair shared by every lane.  Both are
#: immutable during simulation and deterministic functions of the paper
#: constants, so sharing them changes nothing but the setup cost
#: (building the 256-entry LUT dominates ``paper_system()``).
_PHYSICS: Optional[Tuple[object, object]] = None


def _shared_physics():
    global _PHYSICS
    if _PHYSICS is None:
        tuning_map = paper_tuning_map()
        _PHYSICS = (tuning_map, paper_lut(tuning_map))
    return _PHYSICS


def _build_parts(spec: PartsSpec) -> SystemParts:
    """``spec.build()`` with the immutable physics shared across lanes.

    Exactly :func:`repro.system.components.paper_system`, but reusing
    one tuning map and LUT per process instead of re-characterising them
    per scenario (building the 256-entry LUT dominates lane setup).
    """
    tuning_map, lut = _shared_physics()
    return paper_system(
        v_init=spec.v_init,
        initial_position=spec.initial_position,
        initial_frequency=spec.initial_frequency,
        tuning_map=tuning_map,
        lut=lut,
    )


# -- the batch engine --------------------------------------------------------


class VectorizedEnvelopeEngine:
    """Advance many :class:`EnvelopeSimulator` lanes in lockstep.

    The engine owns the hot-path state as arrays; the lane simulators
    own everything event-ish (RNG, actuator, tuning sessions, traces,
    the watchdog schedule).  State is pushed into a lane's objects right
    before its wake-up session runs (or before finalisation) and pulled
    back after, so a session sees exactly the world a scalar run would.
    """

    def __init__(self, sims: Sequence[EnvelopeSimulator], horizons: Sequence[float]):
        require_numpy()
        if len(sims) != len(horizons):
            raise SimulationError("one horizon per simulator required")
        if not sims:
            raise SimulationError("batch engine needs at least one lane")
        for horizon in horizons:
            if horizon <= 0.0:
                raise SimulationError("horizon must be positive")
        self.sims = list(sims)
        n = len(self.sims)
        # Scalar-only per-lane event state (plain python lists; nothing
        # vectorized reads these).
        self.horizon = [float(h) for h in horizons]

        # Per-lane constants.
        self.cap = np.array([s.store.capacitance for s in sims], dtype=float)
        self.emax = np.array([s.store.energy_max for s in sims], dtype=float)
        self.dtmax = np.array([s.dt_max for s in sims], dtype=float)
        self.v_off = np.array([s.policy.v_off for s in sims], dtype=float)
        self.v_fast = np.array([s.policy.v_fast for s in sims], dtype=float)
        # Epsilon-shifted copies, precomputed once (the same additions
        # the scalar comparisons perform per step).
        self.v_off_lo = self.v_off - _V_EPS
        self.v_off_hi = self.v_off + _V_EPS
        self.v_fast_lo = self.v_fast - _V_EPS
        self.v_fast_hi = self.v_fast + _V_EPS
        self.int_mid = np.array([s.policy.mid_interval for s in sims], dtype=float)
        self.int_fast = np.array([s.policy.fast_interval for s in sims], dtype=float)
        self.rate_mid = 1.0 / self.int_mid
        self.rate_fast = 1.0 / self.int_fast
        self.sleep_i = np.array([s.node.sleep_current for s in sims], dtype=float)
        self.mcu_slp = np.array([s.mcu.sleep_power() for s in sims], dtype=float)
        self.q_tx = np.array([s.node.phases.total_charge for s in sims], dtype=float)
        self.kc = np.array(
            [s.micro.envelope.rectifier.conduction_factor for s in sims], dtype=float
        )
        self.rs = np.array(
            [s.micro.envelope.source_resistance for s in sims], dtype=float
        )
        self.traced = np.array([s.record_traces for s in sims], dtype=bool)
        self._any_traced = bool(self.traced.any())

        # Vibration-profile geometry: per-lane segment start times padded
        # with +inf so pointer reads never go out of bounds, plus cached
        # per-segment excitation (python floats: the refresh math runs
        # scalar) and the "next boundary" arrays the hot loop compares
        # against without re-gathering.
        self._lane_starts: List[List[float]] = [
            list(s._change_times) for s in sims
        ]
        self._seg_f: List[List[float]] = [
            [seg.frequency_hz for seg in s.profile.segments] for s in sims
        ]
        self._seg_a: List[List[float]] = [
            [seg.accel_mps2 for seg in s.profile.segments] for s in sims
        ]
        width = max(len(st) for st in self._lane_starts) + 2
        starts = np.full((n, width), np.inf, dtype=float)
        for i, st in enumerate(self._lane_starts):
            starts[i, : len(st)] = st
        self.starts = starts
        self.n_seg = np.array([len(st) for st in self._lane_starts], dtype=np.int64)
        self.rows = np.arange(n)

        # Dynamic state (mirrors of the lane objects' fields).
        self.t = np.zeros(n)
        self.energy = np.zeros(n)
        self.dep = np.zeros(n)
        self.drawn = np.zeros(n)
        self.clip = np.zeros(n)
        self.b_harv = np.zeros(n)
        self.b_nsl = np.zeros(n)
        self.b_msl = np.zeros(n)
        self.b_ntx = np.zeros(n)
        self.b_short = np.zeros(n)
        self.frac = np.zeros(n)
        # Whole-transmission counts; kept float64 so the per-step
        # accumulation needs no astype (floored floats are exact
        # integers far below 2**53).
        self.tx_count = np.zeros(n)
        self.tx_e = np.zeros(n)

        # Harvest coefficients of the current (segment, position) pair,
        # and the position-dependent resonator constants they derive
        # from (python floats: the refresh math runs through the same
        # ``math`` functions as the scalar harvester).
        self.voc = np.zeros(n)
        self.plim = np.zeros(n)
        # Only ever touched one lane at a time, so plain python lists
        # (scalar numpy indexing would dominate the pointer walk).
        self.freq = [0.0] * n
        self.seg_idx = [0] * n
        self.chg_idx = [0] * n
        self.nxt_seg = np.full(n, np.inf)
        self.cur_chg = np.full(n, np.inf)
        self._wn = [0.0] * n
        self._zt = [0.0] * n
        self._ce = [0.0] * n
        self._theta = [
            s.micro.envelope.coupling.theta for s in sims
        ]
        self._vd = [
            s.micro.envelope.rectifier.diode_drop for s in sims
        ]
        self._eff = [s.micro.envelope.mech_efficiency for s in sims]
        # Array mirrors of the refresh constants, so segment-crossing
        # waves can run the coefficient math vectorized (see
        # :meth:`_advance_pointers`).  ``_wn_a``/``_zt_a``/``_ce_half_a``
        # are kept in sync by :meth:`_retune`; the rest never change.
        # ``_vd2_a``/``_ce_half_a`` hold ``2.0 * vd`` and ``0.5 * ce`` --
        # the exact intermediate floats the scalar expressions produce.
        self._wn_a = np.zeros(n)
        self._zt_a = np.zeros(n)
        self._ce_half_a = np.zeros(n)
        self._theta_a = np.array(self._theta, dtype=float)
        self._vd2_a = np.array([2.0 * v for v in self._vd], dtype=float)
        self._eff_a = np.array(self._eff, dtype=float)

        # Fixed per-lane command costs (pure functions of the MCU clock,
        # identical floats to what ``mcu.busy`` computes each call).
        self._act_pw = [s.mcu.power.active_power(s.mcu.clock_hz) for s in sims]
        self._chk_cost = [p * 2e-3 for p in self._act_pw]
        self._pos_cost = [p * 1e-3 for p in self._act_pw]
        self._cap_l = [float(s.store.capacitance) for s in sims]

        # Store shadow of the lane whose session event is being pumped:
        # energy draws inside one event run on plain floats and are
        # flushed back to the arrays once per event instead of paying
        # NumPy scalar reads/writes per draw.  ``_Ei < 0`` marks the
        # shadow empty (stored energy is never negative).
        self._Ei = -1.0
        self._dri = 0.0
        self._shi = 0.0

        # Flow control.
        self.target = np.zeros(n)
        self.final = [False] * n
        self.done = np.zeros(n, dtype=bool)

        # Per-lane tuning-session drivers: the live generator, the
        # post-integration continuation of the command currently
        # spanning simulated time, and the wake-up bookkeeping the
        # TuningEvent needs.  ``_res_cache`` memoises the retuned
        # resonator (and its derived constants) per (tuning map,
        # position): the map is immutable during simulation, so lanes
        # sharing the process-wide physics share every entry.
        self._gen: List[Optional[object]] = [None] * n
        self._after: List[Optional[Tuple[str, object]]] = [None] * n
        self._sess_t0 = [0.0] * n
        self._sess_e0 = [0.0] * n
        self._sess_wall = [0.0] * n
        self._res_cache: Dict[Tuple[int, float], Tuple[object, float, float, float]] = {}
        # One-entry per-lane memo in front of the shared cache: fine
        # tuning alternates between a couple of neighbouring positions,
        # so most lookups re-hit the lane's previous position.
        self._res_pos: List[Optional[float]] = [None] * n
        self._res_hit: List[Optional[Tuple[object, float, float, float]]] = [None] * n

        for i in range(n):
            self._pull(i)
            self._resync(i)
            self._set_target(i)

    # -- object <-> array synchronisation -----------------------------------

    def _pull(self, i: int) -> None:
        sim = self.sims[i]
        self.t[i] = sim.t
        self.energy[i] = sim.store._energy
        self.dep[i] = sim.store.total_deposited
        self.drawn[i] = sim.store.total_drawn
        self.clip[i] = sim.store.clipped_energy
        self.b_harv[i] = sim.breakdown.harvested
        self.b_nsl[i] = sim.breakdown.node_sleep
        self.b_msl[i] = sim.breakdown.mcu_sleep
        self.b_ntx[i] = sim.breakdown.node_tx
        self.b_short[i] = sim.breakdown.shortfall
        self.frac[i] = sim.log._fractional
        self.tx_count[i] = sim.log._count
        self.tx_e[i] = sim.log.total_energy

    def _push(self, i: int) -> None:
        sim = self.sims[i]
        sim.t = float(self.t[i])
        sim.store._energy = float(self.energy[i])
        sim.store.total_deposited = float(self.dep[i])
        sim.store.total_drawn = float(self.drawn[i])
        sim.store.clipped_energy = float(self.clip[i])
        sim.breakdown.harvested = float(self.b_harv[i])
        sim.breakdown.node_sleep = float(self.b_nsl[i])
        sim.breakdown.mcu_sleep = float(self.b_msl[i])
        sim.breakdown.node_tx = float(self.b_ntx[i])
        sim.breakdown.shortfall = float(self.b_short[i])
        sim.log._fractional = float(self.frac[i])
        sim.log._count = int(self.tx_count[i])
        sim.log.total_energy = float(self.tx_e[i])

    # -- segment bookkeeping -------------------------------------------------

    def _resonator(self, i: int):
        """The lane's retuned resonator and derived constants (cached).

        The tuning map is immutable during simulation and the derived
        constants are pure functions of (map, position), so the cache
        returns exactly what ``TuningMap.resonator_at`` would construct
        -- including for the fractional positions fine tuning reaches.
        """
        sim = self.sims[i]
        pos = sim.micro.position
        if pos == self._res_pos[i]:
            return self._res_hit[i]
        tuning_map = sim.micro.tuning_map
        key = (id(tuning_map), pos)
        hit = self._res_cache.get(key)
        if hit is None:
            resonator = tuning_map.resonator_at(pos)
            hit = (
                resonator,
                resonator.omega_n,
                resonator.zeta_total,
                resonator.damping_elec,
            )
            self._res_cache[key] = hit
        self._res_pos[i] = pos
        self._res_hit[i] = hit
        return hit

    def _retune(self, i: int) -> None:
        """Re-derive the lane's position-dependent resonator constants.

        Positions only move inside tuning sessions, so this runs at lane
        setup and after each actuator move; the values come from the
        lane's own :class:`~repro.harvester.tuning_map.TuningMap`,
        exactly as the scalar harvester derives them.
        """
        _, wn, zt, ce = self._resonator(i)
        self._wn[i] = wn
        self._zt[i] = zt
        self._ce[i] = ce
        self._wn_a[i] = wn
        self._zt_a[i] = zt
        self._ce_half_a[i] = 0.5 * ce

    def _refresh(self, i: int, k: Optional[int] = None) -> None:
        """Re-derive the lane's harvest coefficients for its segment.

        Operation-for-operation the scalar chain
        ``EnvelopeHarvester.emf_peak`` -> ``open_circuit_voltage`` and
        ``mechanical_limit`` (same ``math`` calls, same order), with the
        position-dependent constants cached by :meth:`_retune`.
        """
        if k is None:
            k = self.seg_idx[i]
        f = self._seg_f[i][k]
        accel = self._seg_a[i][k]
        w = 2.0 * math.pi * f
        wn = self._wn[i]
        denom = math.hypot(wn * wn - w * w, 2.0 * self._zt[i] * wn * w)
        velocity = w * (accel / denom)
        emf = self._theta[i] * velocity
        self.voc[i] = max(emf - 2.0 * self._vd[i], 0.0)
        self.plim[i] = self._eff[i] * (0.5 * self._ce[i] * velocity * velocity)
        self.freq[i] = f

    def _resync(self, i: int) -> None:
        """Rebuild the lane's profile pointers after a scalar excursion."""
        starts = self._lane_starts[i]
        t = float(self.t[i])
        k = max(bisect.bisect_right(starts, t) - 1, 0)
        c = bisect.bisect_right(starts, t + _T_EPS)
        self.seg_idx[i] = k
        self.chg_idx[i] = c
        self.nxt_seg[i] = self.starts[i, k + 1]
        self.cur_chg[i] = self.starts[i, c]
        self._retune(i)
        self._refresh(i, k)

    def _advance_pointers(self, mask) -> None:
        """Incrementally track ``bisect`` over the monotone lane times.

        The cached ``nxt_seg``/``cur_chg`` boundary arrays make the
        no-boundary-crossed case (almost every step) two compares; lanes
        that did cross walk their own start list scalar and refresh.
        """
        adv = mask & (self.nxt_seg <= self.t)
        if adv.any():
            # Local binds + the refresh math inlined: this walk runs once
            # per (lane, segment) crossing -- ~100k times per hour-long
            # kilobatch -- so per-iteration attribute and numpy-scalar
            # overhead is the dominant cost.  Same operations in the same
            # order as :meth:`_refresh`; boundary crossings cluster (many
            # lanes cross in the same step), so the per-lane times are
            # gathered once and the array updates land as three fancy
            # writes per wave instead of three numpy-scalar stores per
            # lane.  The results are the exact per-lane python floats,
            # so the fancy assignment changes nothing but the store cost.
            idx = np.nonzero(adv)[0]
            lanes = idx.tolist()
            ts = self.t[idx].tolist()
            seg_idx = self.seg_idx
            lane_starts = self._lane_starts
            seg_f, seg_a = self._seg_f, self._seg_a
            freq_l = self.freq
            nxt_new: List[float] = []
            f_new: List[float] = []
            a_new: List[float] = []
            for i, t in zip(lanes, ts):
                starts = lane_starts[i]
                k = seg_idx[i] + 1
                last = len(starts) - 1
                while k < last and starts[k + 1] <= t:
                    k += 1
                seg_idx[i] = k
                nxt_new.append(starts[k + 1] if k < last else math.inf)
                f = seg_f[i][k]
                f_new.append(f)
                a_new.append(seg_a[i][k])
                freq_l[i] = f
            self.nxt_seg[idx] = nxt_new
            # The refresh math, elementwise over the wave.  Every
            # expression keeps the scalar :meth:`_refresh` association
            # order (and ``hypot`` stays ``math.hypot`` per lane --
            # NumPy's is not guaranteed bit-equal), so each lane gets
            # the exact floats a scalar refresh would produce.
            f_arr = np.array(f_new)
            accel = np.array(a_new)
            w = 2.0 * math.pi * f_arr
            wn = self._wn_a[idx]
            zt = self._zt_a[idx]
            aa = (wn * wn - w * w).tolist()
            bb = ((2.0 * zt) * wn * w).tolist()
            hypot = math.hypot
            denom = np.array([hypot(x, y) for x, y in zip(aa, bb)])
            velocity = w * (accel / denom)
            emf = self._theta_a[idx] * velocity
            x = emf - self._vd2_a[idx]
            # ``max(x, 0.0)`` returns x unless 0.0 is strictly greater.
            self.voc[idx] = np.where(0.0 > x, 0.0, x)
            self.plim[idx] = self._eff_a[idx] * (
                self._ce_half_a[idx] * velocity * velocity
            )
        adv = mask & (self.cur_chg <= self.t + _T_EPS)
        if adv.any():
            idx = np.nonzero(adv)[0]
            lanes = idx.tolist()
            ts = self.t[idx].tolist()
            chg_idx = self.chg_idx
            lane_starts = self._lane_starts
            chg_new: List[float] = []
            for i, t in zip(lanes, ts):
                starts = lane_starts[i]
                te = t + _T_EPS
                c = chg_idx[i] + 1
                n_seg = len(starts)
                while c < n_seg and starts[c] <= te:
                    c += 1
                chg_idx[i] = c
                chg_new.append(starts[c] if c < n_seg else math.inf)
            self.cur_chg[idx] = chg_new

    # -- event handling -------------------------------------------------------

    def _set_target(self, i: int) -> None:
        t_wake = self.sims[i].watchdog.next_wakeup(self.t.item(i))
        if t_wake >= self.horizon[i]:
            self.target[i] = self.horizon[i]
            self.final[i] = True
        else:
            self.target[i] = t_wake
            self.final[i] = False

    def _finalize(self, i: int) -> SystemResult:
        sim = self.sims[i]
        sim.breakdown.final_stored = sim.store.energy
        sim.breakdown.clipped = sim.store.clipped_energy
        return SystemResult(
            config=sim.config,
            horizon=sim.t,
            transmissions=sim.log.count,
            breakdown=sim.breakdown,
            traces=sim.traces,
            tuning_events=sim.tuning_events,
            final_voltage=sim.store.voltage,
            final_position=sim.micro.position,
        )

    # -- interleaved tuning sessions ------------------------------------------

    def _voltage(self, i: int) -> float:
        """Store terminal voltage, exactly ``EnergyStore.voltage``."""
        E = self._Ei
        if E < 0.0:
            E = self.energy.item(i)
        if E <= 0.0:
            return 0.0
        return math.sqrt(2.0 * E / self._cap_l[i])

    def _consumed(self, i: int) -> float:
        """``EnergyBreakdown.consumed`` over the mirrored accounts.

        Same terms in the same left-to-right order as the scalar
        property, reading the mirrored buckets from the arrays and the
        session-only buckets (MCU active, accelerometer, actuator) from
        the lane's breakdown object, where they authoritatively live.
        """
        bd = self.sims[i].breakdown
        return (
            self.b_ntx.item(i)
            + self.b_nsl.item(i)
            + self.b_msl.item(i)
            + bd.mcu_active
            + bd.accelerometer
            + bd.actuator
            - self.b_short.item(i)
        )

    def _edraw(self, i: int, energy: float, bucket: str) -> None:
        """Scalar ``_draw`` against the lane's mirrored store state.

        Mirrors ``EnergyStore.draw`` plus the breakdown bookkeeping of
        ``EnvelopeSimulator._draw`` operation-for-operation; ``bucket``
        is always one of the session-only accounts, which live on the
        lane's breakdown object rather than in arrays.  Draws run on
        the per-event float shadow (loaded lazily here, written back by
        :meth:`_flush_store` when the event ends).
        """
        if energy <= 0.0:
            return
        E = self._Ei
        if E < 0.0:
            E = self.energy.item(i)
            self._dri = self.drawn.item(i)
            self._shi = self.b_short.item(i)
        supplied = energy if energy <= E else E
        self._Ei = E - supplied
        self._dri += supplied
        bd = self.sims[i].breakdown
        if bucket == "mcu_active":
            bd.mcu_active += energy
        elif bucket == "accelerometer":
            bd.accelerometer += energy
        else:
            bd.actuator += energy
        if supplied < energy:
            self._shi += energy - supplied

    def _flush_store(self, i: int) -> None:
        """Write the event's store shadow back to the lane arrays."""
        E = self._Ei
        if E >= 0.0:
            self.energy[i] = E
            self.drawn[i] = self._dri
            self.b_short[i] = self._shi
            self._Ei = -1.0

    def _session_begin(self, i: int) -> None:
        """Start one Algorithm 1 wake-up on this lane (scalar `_run_wakeup`)."""
        sim = self.sims[i]
        self._sess_t0[i] = self.t.item(i)
        self._sess_e0[i] = self._consumed(i)
        self._sess_wall[i] = time.perf_counter() if _OBS.metrics_on else 0.0
        gen = tuning_session(sim.parts.lut)
        self._gen[i] = gen
        sim._session_active = True
        try:
            command = next(gen)
        except StopIteration as stop:  # pragma: no cover - sessions yield
            self._session_finish(i, stop)
            return
        self._dispatch(i, command)
        self._flush_store(i)

    def _dispatch(self, i: int, command) -> None:
        """Pump session commands until one spans simulated time.

        Instant commands (energy check, position read) respond in place;
        a time-spanning command performs its pre-integration effects
        (RNG measurement draw, actuator motion) exactly as the scalar
        handler would, then schedules the lane's integration target at
        the command's end -- the run loop integrates it in lockstep with
        every other lane and resumes via :meth:`_session_continue`.
        """
        sim = self.sims[i]
        gen = self._gen[i]
        # The isinstance chain is ordered by observed command frequency
        # (settling waits and fine-tuning steps dominate a session); each
        # command matches exactly one arm, so the order is free.
        while True:
            if isinstance(command, Settle):
                self._after[i] = ("settle", None)
                self.target[i] = self.t.item(i) + command.duration
                return
            elif isinstance(command, StepActuator):
                move = sim.micro.actuator.move_steps(command.direction)
                if move.steps:
                    self._retune(i)
                    self._refresh(i)
                if move.duration > 0.0:
                    busy_e = self._act_pw[i] * move.duration
                    self._after[i] = ("move", (busy_e, move))
                    self.target[i] = self.t.item(i) + move.duration
                    return
                response = move.steps
            elif isinstance(command, MeasurePhase):
                resonator = self._resonator(i)[0]
                true_phase = resonator.phase_difference_seconds(
                    float(self.freq[i])
                )
                m = sim.mcu.measure_phase(true_phase, sim.rng)
                self._after[i] = ("phase", m)
                self.target[i] = self.t.item(i) + m.duration
                return
            elif isinstance(command, CheckEnergy):
                # Cached ``mcu.busy(2e-3).mcu_energy`` (same product of
                # the same floats, so bitwise identical).
                self._edraw(i, self._chk_cost[i], "mcu_active")
                response = self._voltage(i) >= command.threshold
            elif isinstance(command, GetCurrentPosition):
                self._edraw(i, self._pos_cost[i], "mcu_active")
                response = int(round(sim.micro.position))
            elif isinstance(command, MeasureFrequency):
                f_true = float(self.freq[i])
                m = sim.mcu.measure_frequency(f_true, sim.rng)
                self._after[i] = ("freq", m)
                self.target[i] = self.t.item(i) + m.duration
                return
            elif isinstance(command, MoveActuatorTo):
                move = sim.micro.actuator.move_to_position(command.position)
                if move.steps:
                    self._retune(i)
                    self._refresh(i)
                if move.duration > 0.0:
                    busy_e = self._act_pw[i] * move.duration
                    self._after[i] = ("move", (busy_e, move))
                    self.target[i] = self.t.item(i) + move.duration
                    return
                response = move.steps
            else:
                raise SimulationError(f"unknown controller command {command!r}")
            try:
                command = gen.send(response)
            except StopIteration as stop:
                self._session_finish(i, stop)
                return

    def _session_continue(self, i: int) -> None:
        """Resume a session whose time-spanning command just integrated."""
        kind, payload = self._after[i]
        self._after[i] = None
        if kind == "freq":
            self._edraw(i, payload.mcu_energy, "mcu_active")
            response = payload.value
        elif kind == "phase":
            self._edraw(i, payload.mcu_energy, "mcu_active")
            self._edraw(i, payload.peripheral_energy, "accelerometer")
            response = payload.value
        elif kind == "move":
            busy_e, move = payload
            self._edraw(i, busy_e, "mcu_active")
            self._edraw(i, move.energy, "actuator")
            response = move.steps
        else:  # settle
            response = None
        try:
            command = self._gen[i].send(response)
        except StopIteration as stop:
            self._session_finish(i, stop)
            return
        self._dispatch(i, command)
        self._flush_store(i)

    def _session_finish(self, i: int, stop: StopIteration) -> None:
        """Close the session: tuning log, telemetry, next watchdog target."""
        result = _result_of(stop)
        self._flush_store(i)
        sim = self.sims[i]
        sim._session_active = False
        self._gen[i] = None
        if _OBS.metrics_on:
            _TUNING_SESSIONS.inc()
            _SESSION_SECONDS.observe(time.perf_counter() - self._sess_wall[i])
        sim.tuning_events.append(
            TuningEvent(
                time=self._sess_t0[i],
                result=result,
                duration=self.t.item(i) - self._sess_t0[i],
                energy=self._consumed(i) - self._sess_e0[i],
            )
        )
        self._set_target(i)

    # -- the run loop ----------------------------------------------------------

    def run(self) -> List[SystemResult]:
        results: List[Optional[SystemResult]] = [None] * len(self.sims)
        guard = 0
        # The loop allocates millions of short-lived temporaries and no
        # cycles; generational GC scans cost a double-digit share of the
        # run, so collection is deferred until the batch completes.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                not_done = ~self.done
                reached = self.t >= self.target - _T_EPS
                due = not_done & reached
                if due.any():
                    guard = 0
                    for i in np.nonzero(due)[0].tolist():
                        if self._gen[i] is not None:
                            self._session_continue(i)
                        elif self.final[i]:
                            self._push(i)
                            results[i] = self._finalize(i)
                            self.done[i] = True
                        else:
                            self._session_begin(i)
                    if self.done.all():
                        break
                    # Event handlers moved targets; recompute.
                    stepping = (~self.done) & (self.t < self.target - _T_EPS)
                else:
                    stepping = not_done & ~reached
                if not stepping.any():
                    continue
                guard += 1
                if guard > _MAX_ITERATIONS:  # pragma: no cover - runaway guard
                    raise SimulationError(
                        "vectorized integrator failed to advance"
                    )
                self._step(stepping)
        finally:
            if gc_was_enabled:
                gc.enable()
        return results  # type: ignore[return-value]

    # -- one lockstep integration step ---------------------------------------

    def _step(self, mask) -> None:
        """One envelope integration step for every lane in ``mask``.

        Per lane this is operation-for-operation the scalar
        ``_integrate_until`` body: step-size capping, threshold
        detection, sliding-mode resolution, exact threshold landing and
        the deposit/draw/transmit energy flows, evaluated with NumPy
        ``where``-selected branches instead of Python ``if``.
        """
        t = self.t
        E = self.energy
        with np.errstate(divide="ignore", invalid="ignore"):
            # Step cap: dt_max, the integration target, the next
            # vibration-profile change (the padding rows are +inf, so
            # lanes past their last change keep dt_cap), floored at the
            # time epsilon.
            dt_cap = np.minimum(self.dtmax, self.target - t)
            dt_cap = np.minimum(dt_cap, self.cur_chg - t)
            dt_cap = np.maximum(dt_cap, _T_EPS)

            # Stored energy is never negative (draws and supplies clamp
            # at zero), so the scalar ``E <= 0 -> 0.0`` branch reduces to
            # ``sqrt(0) == 0.0`` and the guard is free.
            v = np.sqrt((2.0 * E) / self.cap)

            # Power terms at the step's starting voltage.
            i_chg = (self.kc * (self.voc - v)) / self.rs
            p_th = v * i_chg
            p_th = np.where(self.voc > v, p_th, 0.0)
            p_h = np.minimum(p_th, self.plim)
            nsl_p = self.sleep_i * v
            p_slp = nsl_p + self.mcu_slp
            p_avail = p_h - p_slp
            e_tx = self.q_tx * v

            # Threshold geometry.  Sitting exactly on a threshold is the
            # rare case (a handful of steps per band transit), so the
            # sliding-mode block only runs when some lane is on one.
            near_off = np.abs(v - self.v_off) < _V_EPS
            near_fast = (~near_off) & (np.abs(v - self.v_fast) < _V_EPS)
            at_thr = near_off | near_fast
            if at_thr.any():
                thr = np.where(near_off, self.v_off, self.v_fast)
                up_int = np.where(near_off, self.int_mid, self.int_fast)
                lo_int = np.where(near_off, np.inf, self.int_mid)
                up_rate = np.where(near_off, self.rate_mid, self.rate_fast)
                lo_rate = np.where(near_off, 0.0, self.rate_mid)
                drain_up = e_tx / up_int
                drain_lo = e_tx / lo_int
                p_up = p_avail - drain_up
                p_lo = p_avail - drain_lo
                sliding = at_thr & (p_up < 0.0) & (p_lo > 0.0)
                any_sliding = bool(sliding.any())

                if any_sliding:
                    # Sliding mode: pin the voltage, transmit the
                    # averaged mix.
                    lam = p_lo / (p_lo - p_up)
                    s_rate = (lam * up_rate) + ((1.0 - lam) * lo_rate)
                    s_drain = (lam * drain_up) + ((1.0 - lam) * drain_lo)

                # Plain band step (also: moving cleanly off a threshold).
                v_eval = np.where(
                    at_thr,
                    np.where(p_up >= 0.0, thr + _V_EPS, thr - _V_EPS),
                    v,
                )
                below_off = v_eval < self.v_off
                below_fast = v_eval < self.v_fast
            else:
                sliding = None
                any_sliding = False
                v_eval = v
                below_off = v < self.v_off
                below_fast = v < self.v_fast
            b_int = np.where(
                below_off,
                np.inf,
                np.where(below_fast, self.int_mid, self.int_fast),
            )
            b_rate = np.where(
                below_off,
                0.0,
                np.where(below_fast, self.rate_mid, self.rate_fast),
            )
            b_drain = e_tx / b_int
            p_net = p_avail - b_drain

            # Land exactly on the next threshold in the travel direction.
            thr_up = np.where(
                v < self.v_off_lo,
                self.v_off,
                np.where(v < self.v_fast_lo, self.v_fast, np.nan),
            )
            thr_dn = np.where(
                v > self.v_fast_hi,
                self.v_fast,
                np.where(v > self.v_off_hi, self.v_off, np.nan),
            )
            thr_t = np.where(p_net > 0.0, thr_up, np.where(p_net < 0.0, thr_dn, np.nan))
            e_target = (0.5 * self.cap) * thr_t * thr_t
            dt_cross = (e_target - E) / p_net
            dt_b = dt_cap
            # NaN (no threshold in the travel direction) and +inf
            # crossings both fail the range check, so no isfinite needed.
            take = (dt_cross > 0.0) & (dt_cross < dt_b)
            dt_b = np.where(take, dt_cross, dt_b)
            dt_b = np.maximum(dt_b, _T_EPS)

            # Select the branch each lane actually takes.
            if any_sliding:
                dt = np.where(sliding, dt_cap, dt_b)
                drain = np.where(sliding, s_drain, b_drain)
                rate = np.where(sliding, s_rate, b_rate)
            else:
                dt = dt_b
                drain = b_drain
                rate = b_rate
            n_tx = rate * dt

            # Energy flows, in the scalar accounting order.
            amount = p_h * dt
            headroom = np.maximum(self.emax - E, 0.0)
            stored = np.minimum(amount, headroom)
            e1 = E + stored
            nsl_e = nsl_p * dt
            msl_e = self.mcu_slp * dt
            sup1 = np.minimum(nsl_e, e1)
            e2 = e1 - sup1
            sup2 = np.minimum(msl_e, e2)
            e3 = e2 - sup2
            tx_e = drain * dt
            sup3 = np.minimum(tx_e, e3)
            e4 = e3 - sup3
            new_t = t + dt

            frac1 = self.frac + n_tx
            whole = np.floor(frac1)

        if mask.all():
            # Every lane accepted the step: plain rebinds and in-place
            # accumulator adds (same additions in the same order as the
            # masked path, without the copyto select cost).
            self.energy = e4
            self.t = new_t
            self.dep += stored
            self.clip += amount - stored
            self.b_harv += stored
            self.drawn += sup1
            self.drawn += sup2
            self.drawn += sup3
            self.b_nsl += nsl_e
            self.b_msl += msl_e
            self.b_ntx += tx_e
            self.b_short += nsl_e - sup1
            self.b_short += msl_e - sup2
            self.b_short += tx_e - sup3
            self.frac = frac1 - whole
            self.tx_count += whole
            self.tx_e += tx_e
        else:
            # Masked write-back (np.copyto touches each array once; the
            # accumulator sums stay sequential to match the scalar
            # rounding order).  Off-mask lanes keep their state
            # untouched.
            m = mask
            np.copyto(self.energy, e4, where=m)
            np.copyto(self.t, new_t, where=m)
            np.copyto(self.dep, self.dep + stored, where=m)
            np.copyto(self.clip, self.clip + (amount - stored), where=m)
            np.copyto(self.b_harv, self.b_harv + stored, where=m)
            drawn = self.drawn + sup1
            drawn = drawn + sup2
            drawn = drawn + sup3
            np.copyto(self.drawn, drawn, where=m)
            np.copyto(self.b_nsl, self.b_nsl + nsl_e, where=m)
            np.copyto(self.b_msl, self.b_msl + msl_e, where=m)
            np.copyto(self.b_ntx, self.b_ntx + tx_e, where=m)
            short = self.b_short + (nsl_e - sup1)
            short = short + (msl_e - sup2)
            short = short + (tx_e - sup3)
            np.copyto(self.b_short, short, where=m)
            np.copyto(self.frac, frac1 - whole, where=m)
            np.copyto(self.tx_count, self.tx_count + whole, where=m)
            np.copyto(self.tx_e, self.tx_e + tx_e, where=m)

        # Enter any newly reached vibration segment before tracing (and
        # before the next step reads the coefficients).
        self._advance_pointers(mask)
        if self._any_traced:
            self._record_traces(mask & self.traced)

    def _record_traces(self, mask) -> None:
        """Mirror the scalar ``_trace_point`` for trace-enabled lanes."""
        if not mask.any():
            return
        E = self.energy
        with np.errstate(invalid="ignore"):
            v = np.where(
                E > 0.0, np.sqrt(np.maximum(2.0 * E, 0.0) / self.cap), 0.0
            )
            p_th = v * ((self.kc * (self.voc - v)) / self.rs)
            p_th = np.where(self.voc > v, p_th, 0.0)
            p_h = np.minimum(p_th, self.plim)
        for idx in np.nonzero(mask)[0]:
            i = int(idx)
            sim = self.sims[i]
            t = float(self.t[i])
            traces = sim.traces
            traces.trace("v_store").append(t, float(v[i]))
            traces.trace("harvest_power").append(t, float(p_h[i]))
            traces.trace("position").append(t, sim.micro.position)
            traces.trace("input_frequency").append(t, float(self.freq[i]))


# -- public entry point ------------------------------------------------------


def simulate_batch(scenarios: Sequence[Scenario]) -> List[SystemResult]:
    """Run a batch of scenarios through the vectorized envelope engine.

    Results align with the input order and are canonical
    :class:`~repro.system.result.SystemResult` values -- the same
    payloads a scalar run of each scenario would produce, so store rows,
    golden fixtures and resume bookkeeping are backend-agnostic.
    """
    require_numpy()
    if not scenarios:
        return []
    from repro.backends import _construct

    sims = []
    for scenario in scenarios:
        spec = scenario.parts if scenario.parts is not None else PartsSpec()
        sims.append(
            _construct(
                EnvelopeSimulator,
                scenario,
                scenario.config,
                parts=_build_parts(spec),
                profile=scenario.profile,
                seed=scenario.seed,
                **dict(scenario.options),
            )
        )
    engine = VectorizedEnvelopeEngine(sims, [s.horizon for s in scenarios])
    with span("sim.vectorized.batch", n=len(scenarios)):
        results = engine.run()
    if _OBS.metrics_on:
        _SIM_RUNS.inc(len(results), backend="vectorized")
    return results


def simulate(scenario: Scenario) -> SystemResult:
    """One-call vectorized simulation (a batch of one)."""
    return simulate_batch([scenario])[0]
