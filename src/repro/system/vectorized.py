"""NumPy-vectorized batch envelope simulation (the SIMD backend).

Every batch workload in the library -- Fig. 4 sweeps, Monte Carlo
families, campaigns, studies -- bottoms out in the scalar
:class:`~repro.system.envelope.EnvelopeSimulator`, one scenario at a
time.  This module advances a whole *batch* of scenarios in lockstep
instead: the per-scenario continuous state (time, stored energy, energy
accounts, transmission counters) lives in ``(n_scenarios,)`` NumPy
arrays and every integration step is a handful of elementwise array
operations, so the Python interpreter cost of a step is paid once per
batch rather than once per scenario.

Semantics
---------
The engine is a *re-expression*, not a re-modelling, of the envelope
integrator: per scenario it performs exactly the arithmetic of
``EnvelopeSimulator._integrate_until`` (``dE/dt = P_harvest(V) -
P_sleep - P_tx(V)``, steps clamped at vibration-profile changes, exact
landings on the 2.7 / 2.8 V policy thresholds, sliding-mode pinning at
a threshold) in the same operation order, so results agree with the
scalar backend to the last bit on every platform where NumPy's
elementwise kernels are IEEE-correctly rounded (the differential suite
in ``tests/differential/`` machine-checks the agreement with explicit
tolerance envelopes rather than assuming it).

Two parts of a run stay scalar by design:

- **Tuning sessions** (Algorithm 1 wake-ups) run through the untouched
  sans-IO command machinery of the scalar simulator, per scenario, at
  each scenario's own watchdog times.  Sessions are rare (one per
  watchdog period) and consume the scenario's own RNG stream, so
  measurement noise is identical to a scalar run.
- **Harvest coefficients** (EMF peak, rectifier ceiling, mechanical
  power limit) are evaluated through the scalar
  :class:`~repro.harvester.envelope.EnvelopeHarvester` whenever a lane
  enters a new vibration segment or moves its actuator -- they are
  constant in between, which is what makes the hot loop pure array
  math.

NumPy is an optional dependency of this backend: :func:`require_numpy`
raises a :class:`~repro.errors.ConfigError` naming the ``[vectorized]``
extra when the import is unavailable (or when the
``REPRO_DISABLE_NUMPY`` environment variable simulates its absence, the
hook the no-NumPy CI leg uses).
"""

from __future__ import annotations

import bisect
import math
import os
from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via REPRO_DISABLE_NUMPY in tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.errors import ConfigError, SimulationError
from repro.obs.metrics import metrics as _obs_metrics
from repro.obs.state import STATE as _OBS
from repro.obs.trace import span
from repro.scenario import PartsSpec, Scenario
from repro.system.components import (
    SystemParts,
    paper_lut,
    paper_system,
    paper_tuning_map,
)
from repro.system.envelope import _T_EPS, _V_EPS, EnvelopeSimulator
from repro.system.result import SystemResult

#: Environment variable that simulates a missing NumPy installation
#: (set by the no-NumPy CI leg; see :func:`require_numpy`).
DISABLE_ENV_VAR = "REPRO_DISABLE_NUMPY"

#: Simulation-run telemetry shared with the scalar backend: one count
#: per completed scenario, labelled by the backend that produced it.
_SIM_RUNS = _obs_metrics().counter(
    "repro_sim_runs_total",
    "Completed simulation runs per backend",
    ("backend",),
)

#: Same runaway-protection bound as the scalar integrator.  The scalar
#: guard resets per ``_integrate_until`` call (one inter-event stretch);
#: the engine mirrors that by resetting whenever an event (wake-up or
#: finalisation) is processed, so legitimately long runs never trip it.
_MAX_ITERATIONS = 50_000_000


def numpy_available() -> bool:
    """Whether the vectorized backend can run in this process."""
    return np is not None and not os.environ.get(DISABLE_ENV_VAR)


def require_numpy():
    """Return the ``numpy`` module or raise a helpful ConfigError."""
    if os.environ.get(DISABLE_ENV_VAR):
        raise ConfigError(
            "the 'vectorized' backend needs NumPy, which is disabled in "
            f"this environment ({DISABLE_ENV_VAR} is set); install the "
            "'vectorized' extra (pip install repro-wsn[vectorized]) or "
            "pick another backend (e.g. 'envelope')"
        )
    if np is None:  # pragma: no cover - numpy is present in the test env
        raise ConfigError(
            "the 'vectorized' backend needs NumPy; install the "
            "'vectorized' extra (pip install repro-wsn[vectorized]) or "
            "pick another backend (e.g. 'envelope')"
        )
    return np


# -- shared physics ----------------------------------------------------------

#: Process-wide (tuning map, LUT) pair shared by every lane.  Both are
#: immutable during simulation and deterministic functions of the paper
#: constants, so sharing them changes nothing but the setup cost
#: (building the 256-entry LUT dominates ``paper_system()``).
_PHYSICS: Optional[Tuple[object, object]] = None


def _shared_physics():
    global _PHYSICS
    if _PHYSICS is None:
        tuning_map = paper_tuning_map()
        _PHYSICS = (tuning_map, paper_lut(tuning_map))
    return _PHYSICS


def _build_parts(spec: PartsSpec) -> SystemParts:
    """``spec.build()`` with the immutable physics shared across lanes.

    Exactly :func:`repro.system.components.paper_system`, but reusing
    one tuning map and LUT per process instead of re-characterising them
    per scenario (building the 256-entry LUT dominates lane setup).
    """
    tuning_map, lut = _shared_physics()
    return paper_system(
        v_init=spec.v_init,
        initial_position=spec.initial_position,
        initial_frequency=spec.initial_frequency,
        tuning_map=tuning_map,
        lut=lut,
    )


# -- the batch engine --------------------------------------------------------


class VectorizedEnvelopeEngine:
    """Advance many :class:`EnvelopeSimulator` lanes in lockstep.

    The engine owns the hot-path state as arrays; the lane simulators
    own everything event-ish (RNG, actuator, tuning sessions, traces,
    the watchdog schedule).  State is pushed into a lane's objects right
    before its wake-up session runs (or before finalisation) and pulled
    back after, so a session sees exactly the world a scalar run would.
    """

    def __init__(self, sims: Sequence[EnvelopeSimulator], horizons: Sequence[float]):
        require_numpy()
        if len(sims) != len(horizons):
            raise SimulationError("one horizon per simulator required")
        if not sims:
            raise SimulationError("batch engine needs at least one lane")
        for horizon in horizons:
            if horizon <= 0.0:
                raise SimulationError("horizon must be positive")
        self.sims = list(sims)
        n = len(self.sims)
        self.horizon = np.asarray([float(h) for h in horizons], dtype=float)

        # Per-lane constants.
        self.cap = np.array([s.store.capacitance for s in sims], dtype=float)
        self.emax = np.array([s.store.energy_max for s in sims], dtype=float)
        self.dtmax = np.array([s.dt_max for s in sims], dtype=float)
        self.v_off = np.array([s.policy.v_off for s in sims], dtype=float)
        self.v_fast = np.array([s.policy.v_fast for s in sims], dtype=float)
        self.int_mid = np.array([s.policy.mid_interval for s in sims], dtype=float)
        self.int_fast = np.array([s.policy.fast_interval for s in sims], dtype=float)
        self.rate_mid = 1.0 / self.int_mid
        self.rate_fast = 1.0 / self.int_fast
        self.sleep_i = np.array([s.node.sleep_current for s in sims], dtype=float)
        self.mcu_slp = np.array([s.mcu.sleep_power() for s in sims], dtype=float)
        self.q_tx = np.array([s.node.phases.total_charge for s in sims], dtype=float)
        self.kc = np.array(
            [s.micro.envelope.rectifier.conduction_factor for s in sims], dtype=float
        )
        self.rs = np.array(
            [s.micro.envelope.source_resistance for s in sims], dtype=float
        )
        self.traced = np.array([s.record_traces for s in sims], dtype=bool)
        self._any_traced = bool(self.traced.any())

        # Vibration-profile geometry: per-lane segment start times padded
        # with +inf so pointer reads never go out of bounds.
        self._lane_starts: List[List[float]] = [
            list(s._change_times) for s in sims
        ]
        width = max(len(st) for st in self._lane_starts) + 2
        starts = np.full((n, width), np.inf, dtype=float)
        for i, st in enumerate(self._lane_starts):
            starts[i, : len(st)] = st
        self.starts = starts
        self.n_seg = np.array([len(st) for st in self._lane_starts], dtype=np.int64)
        self.rows = np.arange(n)

        # Dynamic state (mirrors of the lane objects' fields).
        self.t = np.zeros(n)
        self.energy = np.zeros(n)
        self.dep = np.zeros(n)
        self.drawn = np.zeros(n)
        self.clip = np.zeros(n)
        self.b_harv = np.zeros(n)
        self.b_nsl = np.zeros(n)
        self.b_msl = np.zeros(n)
        self.b_ntx = np.zeros(n)
        self.b_short = np.zeros(n)
        self.frac = np.zeros(n)
        self.tx_count = np.zeros(n, dtype=np.int64)
        self.tx_e = np.zeros(n)

        # Harvest coefficients of the current (segment, position) pair,
        # and the position-dependent resonator constants they derive
        # from (python floats: the refresh math runs through the same
        # ``math`` functions as the scalar harvester).
        self.voc = np.zeros(n)
        self.plim = np.zeros(n)
        self.freq = np.zeros(n)
        self.seg_idx = np.zeros(n, dtype=np.int64)
        self.chg_idx = np.zeros(n, dtype=np.int64)
        self._wn = [0.0] * n
        self._zt = [0.0] * n
        self._ce = [0.0] * n
        self._theta = [
            s.micro.envelope.coupling.theta for s in sims
        ]
        self._vd = [
            s.micro.envelope.rectifier.diode_drop for s in sims
        ]
        self._eff = [s.micro.envelope.mech_efficiency for s in sims]

        # Flow control.
        self.target = np.zeros(n)
        self.final = np.zeros(n, dtype=bool)
        self.done = np.zeros(n, dtype=bool)

        for i in range(n):
            self._pull(i)
            self._resync(i)
            self._set_target(i)

    # -- object <-> array synchronisation -----------------------------------

    def _pull(self, i: int) -> None:
        sim = self.sims[i]
        self.t[i] = sim.t
        self.energy[i] = sim.store._energy
        self.dep[i] = sim.store.total_deposited
        self.drawn[i] = sim.store.total_drawn
        self.clip[i] = sim.store.clipped_energy
        self.b_harv[i] = sim.breakdown.harvested
        self.b_nsl[i] = sim.breakdown.node_sleep
        self.b_msl[i] = sim.breakdown.mcu_sleep
        self.b_ntx[i] = sim.breakdown.node_tx
        self.b_short[i] = sim.breakdown.shortfall
        self.frac[i] = sim.log._fractional
        self.tx_count[i] = sim.log._count
        self.tx_e[i] = sim.log.total_energy

    def _push(self, i: int) -> None:
        sim = self.sims[i]
        sim.t = float(self.t[i])
        sim.store._energy = float(self.energy[i])
        sim.store.total_deposited = float(self.dep[i])
        sim.store.total_drawn = float(self.drawn[i])
        sim.store.clipped_energy = float(self.clip[i])
        sim.breakdown.harvested = float(self.b_harv[i])
        sim.breakdown.node_sleep = float(self.b_nsl[i])
        sim.breakdown.mcu_sleep = float(self.b_msl[i])
        sim.breakdown.node_tx = float(self.b_ntx[i])
        sim.breakdown.shortfall = float(self.b_short[i])
        sim.log._fractional = float(self.frac[i])
        sim.log._count = int(self.tx_count[i])
        sim.log.total_energy = float(self.tx_e[i])

    # -- segment bookkeeping -------------------------------------------------

    def _retune(self, i: int) -> None:
        """Re-derive the lane's position-dependent resonator constants.

        Positions only move inside tuning sessions, so this runs at lane
        setup and after each session; the values come from the lane's
        own :class:`~repro.harvester.tuning_map.TuningMap`, exactly as
        the scalar harvester derives them.
        """
        sim = self.sims[i]
        resonator = sim.micro.tuning_map.resonator_at(sim.micro.position)
        self._wn[i] = resonator.omega_n
        self._zt[i] = resonator.zeta_total
        self._ce[i] = resonator.damping_elec

    def _refresh(self, i: int) -> None:
        """Re-derive the lane's harvest coefficients for its segment.

        Operation-for-operation the scalar chain
        ``EnvelopeHarvester.emf_peak`` -> ``open_circuit_voltage`` and
        ``mechanical_limit`` (same ``math`` calls, same order), with the
        position-dependent constants cached by :meth:`_retune`.
        """
        sim = self.sims[i]
        seg = sim.profile.segments[int(self.seg_idx[i])]
        f = seg.frequency_hz
        accel = seg.accel_mps2
        w = 2.0 * math.pi * f
        wn = self._wn[i]
        denom = math.hypot(wn * wn - w * w, 2.0 * self._zt[i] * wn * w)
        velocity = w * (accel / denom)
        emf = self._theta[i] * velocity
        self.voc[i] = max(emf - 2.0 * self._vd[i], 0.0)
        self.plim[i] = self._eff[i] * (0.5 * self._ce[i] * velocity * velocity)
        self.freq[i] = f

    def _resync(self, i: int) -> None:
        """Rebuild the lane's profile pointers after a scalar excursion."""
        starts = self._lane_starts[i]
        t = float(self.t[i])
        self.seg_idx[i] = max(bisect.bisect_right(starts, t) - 1, 0)
        self.chg_idx[i] = bisect.bisect_right(starts, t + _T_EPS)
        self._retune(i)
        self._refresh(i)

    def _advance_pointers(self, mask) -> None:
        """Incrementally track ``bisect`` over the monotone lane times."""
        dirty = np.zeros(len(self.sims), dtype=bool)
        while True:
            nxt = self.starts[self.rows, self.seg_idx + 1]
            adv = mask & (nxt <= self.t)
            if not adv.any():
                break
            self.seg_idx[adv] += 1
            dirty |= adv
        te = self.t + _T_EPS
        while True:
            cur = self.starts[self.rows, self.chg_idx]
            adv = mask & (cur <= te)
            if not adv.any():
                break
            self.chg_idx[adv] += 1
        if dirty.any():
            for i in np.nonzero(dirty)[0]:
                self._refresh(int(i))

    # -- event handling -------------------------------------------------------

    def _set_target(self, i: int) -> None:
        sim = self.sims[i]
        t_wake = sim.watchdog.next_wakeup(sim.t)
        if t_wake >= self.horizon[i]:
            self.target[i] = self.horizon[i]
            self.final[i] = True
        else:
            self.target[i] = t_wake
            self.final[i] = False

    def _finalize(self, i: int) -> SystemResult:
        sim = self.sims[i]
        sim.breakdown.final_stored = sim.store.energy
        sim.breakdown.clipped = sim.store.clipped_energy
        return SystemResult(
            config=sim.config,
            horizon=sim.t,
            transmissions=sim.log.count,
            breakdown=sim.breakdown,
            traces=sim.traces,
            tuning_events=sim.tuning_events,
            final_voltage=sim.store.voltage,
            final_position=sim.micro.position,
        )

    # -- the run loop ----------------------------------------------------------

    def run(self) -> List[SystemResult]:
        results: List[Optional[SystemResult]] = [None] * len(self.sims)
        guard = 0
        while True:
            due = (~self.done) & (self.t >= self.target - _T_EPS)
            if due.any():
                guard = 0
                for idx in np.nonzero(due)[0]:
                    i = int(idx)
                    self._push(i)
                    if self.final[i]:
                        results[i] = self._finalize(i)
                        self.done[i] = True
                        continue
                    self.sims[i]._run_wakeup()
                    self._pull(i)
                    self._resync(i)
                    self._set_target(i)
                if self.done.all():
                    break
            stepping = (~self.done) & (self.t < self.target - _T_EPS)
            if not stepping.any():
                continue
            guard += 1
            if guard > _MAX_ITERATIONS:  # pragma: no cover - runaway guard
                raise SimulationError("vectorized integrator failed to advance")
            self._step(stepping)
        return results  # type: ignore[return-value]

    # -- one lockstep integration step ---------------------------------------

    def _step(self, mask) -> None:
        """One envelope integration step for every lane in ``mask``.

        Per lane this is operation-for-operation the scalar
        ``_integrate_until`` body: step-size capping, threshold
        detection, sliding-mode resolution, exact threshold landing and
        the deposit/draw/transmit energy flows, evaluated with NumPy
        ``where``-selected branches instead of Python ``if``.
        """
        t = self.t
        E = self.energy
        with np.errstate(divide="ignore", invalid="ignore"):
            # Step cap: dt_max, the integration target, the next
            # vibration-profile change, floored at the time epsilon.
            dt_cap = np.minimum(self.dtmax, self.target - t)
            nxt_chg = self.starts[self.rows, self.chg_idx]
            dt_cap = np.where(
                np.isfinite(nxt_chg), np.minimum(dt_cap, nxt_chg - t), dt_cap
            )
            dt_cap = np.maximum(dt_cap, _T_EPS)

            v = np.where(
                E > 0.0, np.sqrt(np.maximum(2.0 * E, 0.0) / self.cap), 0.0
            )

            # Power terms at the step's starting voltage.
            i_chg = (self.kc * (self.voc - v)) / self.rs
            p_th = v * i_chg
            p_th = np.where(self.voc > v, p_th, 0.0)
            p_h = np.minimum(p_th, self.plim)
            p_slp = (self.sleep_i * v) + self.mcu_slp
            e_tx = self.q_tx * v

            # Threshold geometry.
            near_off = np.abs(v - self.v_off) < _V_EPS
            near_fast = (~near_off) & (np.abs(v - self.v_fast) < _V_EPS)
            at_thr = near_off | near_fast
            thr = np.where(near_off, self.v_off, self.v_fast)
            up_int = np.where(near_off, self.int_mid, self.int_fast)
            lo_int = np.where(near_off, np.inf, self.int_mid)
            up_rate = np.where(near_off, self.rate_mid, self.rate_fast)
            lo_rate = np.where(near_off, 0.0, self.rate_mid)
            drain_up = e_tx / up_int
            drain_lo = e_tx / lo_int
            p_up = (p_h - p_slp) - drain_up
            p_lo = (p_h - p_slp) - drain_lo
            sliding = at_thr & (p_up < 0.0) & (p_lo > 0.0)

            # Sliding mode: pin the voltage, transmit the averaged mix.
            lam = p_lo / (p_lo - p_up)
            s_rate = (lam * up_rate) + ((1.0 - lam) * lo_rate)
            s_drain = (lam * drain_up) + ((1.0 - lam) * drain_lo)

            # Plain band step (also: moving cleanly off a threshold).
            v_eval = np.where(
                at_thr,
                np.where(p_up >= 0.0, thr + _V_EPS, thr - _V_EPS),
                v,
            )
            b_int = np.where(
                v_eval < self.v_off,
                np.inf,
                np.where(v_eval < self.v_fast, self.int_mid, self.int_fast),
            )
            b_rate = np.where(
                v_eval < self.v_off,
                0.0,
                np.where(v_eval < self.v_fast, self.rate_mid, self.rate_fast),
            )
            b_drain = e_tx / b_int
            p_net = (p_h - p_slp) - b_drain

            # Land exactly on the next threshold in the travel direction.
            thr_up = np.where(
                v < self.v_off - _V_EPS,
                self.v_off,
                np.where(v < self.v_fast - _V_EPS, self.v_fast, np.nan),
            )
            thr_dn = np.where(
                v > self.v_fast + _V_EPS,
                self.v_fast,
                np.where(v > self.v_off + _V_EPS, self.v_off, np.nan),
            )
            thr_t = np.where(p_net > 0.0, thr_up, np.where(p_net < 0.0, thr_dn, np.nan))
            e_target = (0.5 * self.cap) * thr_t * thr_t
            dt_cross = (e_target - E) / p_net
            dt_b = dt_cap
            take = np.isfinite(dt_cross) & (dt_cross > 0.0) & (dt_cross < dt_b)
            dt_b = np.where(take, dt_cross, dt_b)
            dt_b = np.maximum(dt_b, _T_EPS)

            # Select the branch each lane actually takes.
            dt = np.where(sliding, dt_cap, dt_b)
            drain = np.where(sliding, s_drain, b_drain)
            rate = np.where(sliding, s_rate, b_rate)
            n_tx = rate * dt

            # Energy flows, in the scalar accounting order.
            amount = p_h * dt
            headroom = np.maximum(self.emax - E, 0.0)
            stored = np.minimum(amount, headroom)
            e1 = E + stored
            nsl_e = (self.sleep_i * v) * dt
            msl_e = self.mcu_slp * dt
            sup1 = np.minimum(nsl_e, e1)
            e2 = e1 - sup1
            sup2 = np.minimum(msl_e, e2)
            e3 = e2 - sup2
            tx_e = drain * dt
            sup3 = np.minimum(tx_e, e3)
            e4 = e3 - sup3
            new_t = t + dt

            frac1 = self.frac + n_tx
            whole = np.floor(frac1)
            whole_i = whole.astype(np.int64)

        # Masked write-back (np.copyto touches each array once; the
        # accumulator sums stay sequential to match the scalar rounding
        # order).  Off-mask lanes keep their state untouched.
        m = mask
        np.copyto(self.energy, e4, where=m)
        np.copyto(self.t, new_t, where=m)
        np.copyto(self.dep, self.dep + stored, where=m)
        np.copyto(self.clip, self.clip + (amount - stored), where=m)
        np.copyto(self.b_harv, self.b_harv + stored, where=m)
        drawn = self.drawn + sup1
        drawn = drawn + sup2
        drawn = drawn + sup3
        np.copyto(self.drawn, drawn, where=m)
        np.copyto(self.b_nsl, self.b_nsl + nsl_e, where=m)
        np.copyto(self.b_msl, self.b_msl + msl_e, where=m)
        np.copyto(self.b_ntx, self.b_ntx + tx_e, where=m)
        short = self.b_short + (nsl_e - sup1)
        short = short + (msl_e - sup2)
        short = short + (tx_e - sup3)
        np.copyto(self.b_short, short, where=m)
        np.copyto(self.frac, frac1 - whole, where=m)
        np.copyto(self.tx_count, self.tx_count + whole_i, where=m)
        np.copyto(self.tx_e, self.tx_e + tx_e, where=m)

        # Enter any newly reached vibration segment before tracing (and
        # before the next step reads the coefficients).
        self._advance_pointers(mask)
        if self._any_traced:
            self._record_traces(mask & self.traced)

    def _record_traces(self, mask) -> None:
        """Mirror the scalar ``_trace_point`` for trace-enabled lanes."""
        if not mask.any():
            return
        E = self.energy
        with np.errstate(invalid="ignore"):
            v = np.where(
                E > 0.0, np.sqrt(np.maximum(2.0 * E, 0.0) / self.cap), 0.0
            )
            p_th = v * ((self.kc * (self.voc - v)) / self.rs)
            p_th = np.where(self.voc > v, p_th, 0.0)
            p_h = np.minimum(p_th, self.plim)
        for idx in np.nonzero(mask)[0]:
            i = int(idx)
            sim = self.sims[i]
            t = float(self.t[i])
            traces = sim.traces
            traces.trace("v_store").append(t, float(v[i]))
            traces.trace("harvest_power").append(t, float(p_h[i]))
            traces.trace("position").append(t, sim.micro.position)
            traces.trace("input_frequency").append(t, float(self.freq[i]))


# -- public entry point ------------------------------------------------------


def simulate_batch(scenarios: Sequence[Scenario]) -> List[SystemResult]:
    """Run a batch of scenarios through the vectorized envelope engine.

    Results align with the input order and are canonical
    :class:`~repro.system.result.SystemResult` values -- the same
    payloads a scalar run of each scenario would produce, so store rows,
    golden fixtures and resume bookkeeping are backend-agnostic.
    """
    require_numpy()
    if not scenarios:
        return []
    from repro.backends import _construct

    sims = []
    for scenario in scenarios:
        spec = scenario.parts if scenario.parts is not None else PartsSpec()
        sims.append(
            _construct(
                EnvelopeSimulator,
                scenario,
                scenario.config,
                parts=_build_parts(spec),
                profile=scenario.profile,
                seed=scenario.seed,
                **dict(scenario.options),
            )
        )
    engine = VectorizedEnvelopeEngine(sims, [s.horizon for s in scenarios])
    with span("sim.vectorized.batch", n=len(scenarios)):
        results = engine.run()
    if _OBS.metrics_on:
        _SIM_RUNS.inc(len(results), backend="vectorized")
    return results


def simulate(scenario: Scenario) -> SystemResult:
    """One-call vectorized simulation (a batch of one)."""
    return simulate_batch([scenario])[0]
