"""Simulation results and the energy audit.

:class:`EnergyBreakdown` tracks where every joule went; its
:meth:`~EnergyBreakdown.imbalance` must be ~0 for any correct backend
(property-tested).  :class:`SystemResult` is what a run returns: the
figure of merit (transmission count), traces for the Fig. 5-style plots,
the per-session tuning log and the audit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import List, Mapping, Optional, Tuple, Union

from repro.control.session import SessionResult
from repro.errors import DesignError
from repro.sim.trace import TraceSet
from repro.system.config import SystemConfig

#: Version stamp written into every result JSON payload.  Bump when the
#: layout changes incompatibly; ``SystemResult.from_payload`` (and hence
#: the on-disk result store) refuses unknown versions.
RESULT_SCHEMA = 1


@dataclass
class EnergyBreakdown:
    """Joules by source and sink over a run."""

    initial_stored: float = 0.0
    final_stored: float = 0.0
    harvested: float = 0.0
    clipped: float = 0.0  # harvest rejected at the storage voltage clamp
    node_tx: float = 0.0
    node_sleep: float = 0.0
    mcu_sleep: float = 0.0
    mcu_active: float = 0.0
    accelerometer: float = 0.0
    actuator: float = 0.0
    shortfall: float = 0.0  # demanded but unavailable (store empty)

    @property
    def consumed(self) -> float:
        """Total energy drawn from the store."""
        return (
            self.node_tx
            + self.node_sleep
            + self.mcu_sleep
            + self.mcu_active
            + self.accelerometer
            + self.actuator
            - self.shortfall
        )

    @property
    def tuning_overhead(self) -> float:
        """Energy spent on the tuning subsystem (MCU active + peripherals)."""
        return self.mcu_active + self.accelerometer + self.actuator

    def imbalance(self) -> float:
        """Energy-conservation residual; ~0 for a correct simulation."""
        return (
            self.initial_stored + self.harvested - self.consumed - self.final_stored
        )

    def to_payload(self) -> dict:
        """Plain-JSON dictionary of every energy account."""
        return {f.name: float(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_payload(cls, payload: Mapping) -> "EnergyBreakdown":
        """Rebuild a breakdown from :meth:`to_payload` output."""
        return cls(**{f.name: float(payload.get(f.name, 0.0)) for f in fields(cls)})

    def rows(self) -> List[Tuple[str, float]]:
        """(label, joules) rows for reports."""
        return [
            ("initial stored", self.initial_stored),
            ("harvested", self.harvested),
            ("clipped at clamp", self.clipped),
            ("node transmissions", self.node_tx),
            ("node sleep", self.node_sleep),
            ("MCU sleep", self.mcu_sleep),
            ("MCU active", self.mcu_active),
            ("accelerometer", self.accelerometer),
            ("actuator", self.actuator),
            ("final stored", self.final_stored),
        ]


@dataclass
class TuningEvent:
    """One watchdog wake-up and what its session did."""

    time: float
    result: SessionResult
    duration: float
    energy: float

    def to_payload(self) -> dict:
        """Plain-JSON dictionary (the session nests its own payload)."""
        return {
            "time": float(self.time),
            "duration": float(self.duration),
            "energy": float(self.energy),
            "session": self.result.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "TuningEvent":
        """Rebuild an event from :meth:`to_payload` output."""
        return cls(
            time=float(payload.get("time", 0.0)),
            result=SessionResult.from_payload(payload.get("session", {})),
            duration=float(payload.get("duration", 0.0)),
            energy=float(payload.get("energy", 0.0)),
        )


@dataclass
class SystemResult:
    """Outcome of one system simulation."""

    config: SystemConfig
    horizon: float
    transmissions: int
    breakdown: EnergyBreakdown
    traces: TraceSet = field(default_factory=TraceSet)
    tuning_events: List[TuningEvent] = field(default_factory=list)
    final_voltage: float = 0.0
    final_position: float = 0.0

    @property
    def transmissions_per_hour(self) -> float:
        """Figure of merit normalised to one hour."""
        if self.horizon <= 0.0:
            return 0.0
        return self.transmissions * 3600.0 / self.horizon

    def retune_count(self) -> int:
        """Number of wake-ups that actually moved the actuator."""
        return sum(1 for ev in self.tuning_events if ev.result.retuned)

    # -- serialisation --------------------------------------------------------

    def to_payload(self) -> dict:
        """Plain-JSON dictionary (includes the schema version).

        The payload is fully round-trippable: config, headline metrics,
        the complete energy audit, every tuning event and every recorded
        trace come back intact through :meth:`from_payload`.  This is the
        canonical on-disk form used by the result store
        (:mod:`repro.store`) and by ``repro-wsn run-scenario --out``.
        """
        return {
            "schema": RESULT_SCHEMA,
            "config": {
                "clock_hz": self.config.clock_hz,
                "watchdog_s": self.config.watchdog_s,
                "tx_interval_s": self.config.tx_interval_s,
            },
            "horizon": float(self.horizon),
            "transmissions": int(self.transmissions),
            "final_voltage": float(self.final_voltage),
            "final_position": float(self.final_position),
            "breakdown": self.breakdown.to_payload(),
            "tuning_events": [ev.to_payload() for ev in self.tuning_events],
            "traces": self.traces.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SystemResult":
        """Rebuild a result from :meth:`to_payload` output.

        Unversioned payloads are accepted as schema 1; unknown versions
        and non-object payloads raise :class:`~repro.errors.DesignError`.
        """
        if not isinstance(payload, Mapping):
            raise DesignError(
                f"result payload must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        schema = payload.get("schema", RESULT_SCHEMA)
        if schema != RESULT_SCHEMA:
            raise DesignError(
                f"unsupported result schema {schema!r} "
                f"(this library reads schema {RESULT_SCHEMA})"
            )
        cfg = payload.get("config", {})
        return cls(
            config=SystemConfig(
                clock_hz=float(cfg.get("clock_hz", 4e6)),
                watchdog_s=float(cfg.get("watchdog_s", 320.0)),
                tx_interval_s=float(cfg.get("tx_interval_s", 5.0)),
            ),
            horizon=float(payload.get("horizon", 0.0)),
            transmissions=int(payload.get("transmissions", 0)),
            breakdown=EnergyBreakdown.from_payload(payload.get("breakdown", {})),
            traces=TraceSet.from_payload(payload.get("traces", {})),
            tuning_events=[
                TuningEvent.from_payload(ev)
                for ev in payload.get("tuning_events", [])
            ],
            final_voltage=float(payload.get("final_voltage", 0.0)),
            final_position=float(payload.get("final_position", 0.0)),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON text of :meth:`to_payload`."""
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SystemResult":
        """Parse :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DesignError(f"result file is not valid JSON: {exc}") from exc
        return cls.from_payload(payload)

    def save(self, path: Union[str, Path]) -> None:
        """Write the result to a JSON file."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SystemResult":
        """Read a result from a JSON file."""
        return cls.from_json(Path(path).read_text())

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"config: {self.config.describe()}",
            f"horizon: {self.horizon:.0f} s",
            f"transmissions: {self.transmissions}",
            f"retunes: {self.retune_count()} of {len(self.tuning_events)} wake-ups",
            f"final supercap voltage: {self.final_voltage:.3f} V",
            "energy (mJ):",
        ]
        for label, joules in self.breakdown.rows():
            lines.append(f"  {label:<22s} {joules * 1e3:10.2f}")
        lines.append(f"  imbalance              {self.breakdown.imbalance() * 1e3:10.5f}")
        return "\n".join(lines)
