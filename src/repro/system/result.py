"""Simulation results and the energy audit.

:class:`EnergyBreakdown` tracks where every joule went; its
:meth:`~EnergyBreakdown.imbalance` must be ~0 for any correct backend
(property-tested).  :class:`SystemResult` is what a run returns: the
figure of merit (transmission count), traces for the Fig. 5-style plots,
the per-session tuning log and the audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.control.session import SessionResult
from repro.sim.trace import TraceSet
from repro.system.config import SystemConfig


@dataclass
class EnergyBreakdown:
    """Joules by source and sink over a run."""

    initial_stored: float = 0.0
    final_stored: float = 0.0
    harvested: float = 0.0
    clipped: float = 0.0  # harvest rejected at the storage voltage clamp
    node_tx: float = 0.0
    node_sleep: float = 0.0
    mcu_sleep: float = 0.0
    mcu_active: float = 0.0
    accelerometer: float = 0.0
    actuator: float = 0.0
    shortfall: float = 0.0  # demanded but unavailable (store empty)

    @property
    def consumed(self) -> float:
        """Total energy drawn from the store."""
        return (
            self.node_tx
            + self.node_sleep
            + self.mcu_sleep
            + self.mcu_active
            + self.accelerometer
            + self.actuator
            - self.shortfall
        )

    @property
    def tuning_overhead(self) -> float:
        """Energy spent on the tuning subsystem (MCU active + peripherals)."""
        return self.mcu_active + self.accelerometer + self.actuator

    def imbalance(self) -> float:
        """Energy-conservation residual; ~0 for a correct simulation."""
        return (
            self.initial_stored + self.harvested - self.consumed - self.final_stored
        )

    def rows(self) -> List[Tuple[str, float]]:
        """(label, joules) rows for reports."""
        return [
            ("initial stored", self.initial_stored),
            ("harvested", self.harvested),
            ("clipped at clamp", self.clipped),
            ("node transmissions", self.node_tx),
            ("node sleep", self.node_sleep),
            ("MCU sleep", self.mcu_sleep),
            ("MCU active", self.mcu_active),
            ("accelerometer", self.accelerometer),
            ("actuator", self.actuator),
            ("final stored", self.final_stored),
        ]


@dataclass
class TuningEvent:
    """One watchdog wake-up and what its session did."""

    time: float
    result: SessionResult
    duration: float
    energy: float


@dataclass
class SystemResult:
    """Outcome of one system simulation."""

    config: SystemConfig
    horizon: float
    transmissions: int
    breakdown: EnergyBreakdown
    traces: TraceSet = field(default_factory=TraceSet)
    tuning_events: List[TuningEvent] = field(default_factory=list)
    final_voltage: float = 0.0
    final_position: float = 0.0

    @property
    def transmissions_per_hour(self) -> float:
        """Figure of merit normalised to one hour."""
        if self.horizon <= 0.0:
            return 0.0
        return self.transmissions * 3600.0 / self.horizon

    def retune_count(self) -> int:
        """Number of wake-ups that actually moved the actuator."""
        return sum(1 for ev in self.tuning_events if ev.result.retuned)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"config: {self.config.describe()}",
            f"horizon: {self.horizon:.0f} s",
            f"transmissions: {self.transmissions}",
            f"retunes: {self.retune_count()} of {len(self.tuning_events)} wake-ups",
            f"final supercap voltage: {self.final_voltage:.3f} V",
            "energy (mJ):",
        ]
        for label, joules in self.breakdown.rows():
            lines.append(f"  {label:<22s} {joules * 1e3:10.2f}")
        lines.append(f"  imbalance              {self.breakdown.imbalance() * 1e3:10.5f}")
        return "\n".join(lines)
