"""Stochastic vibration environments and scenario families.

The paper evaluates the node under one scripted excitation (60 mg with
+5 Hz steps every 25 minutes, Fig. 5).  This module is the
scenario-diversity engine on top of that: parameterised random-process
generators that emit *deterministic, seed-derived*
:class:`~repro.system.vibration.VibrationProfile` values, and composable
:class:`ScenarioFamily` objects that expand into concrete
:class:`~repro.scenario.Scenario` lists ready for a
:class:`~repro.core.batch.BatchRunner`.

Generators
----------
:class:`RegimeSwitchingVibration` models a vibration environment as a
Markov chain over named :class:`EnvironmentState` regimes (idle,
machinery-on, transient...), each with its own frequency band,
acceleration band and dwell-time range.  On top of the regime process it
layers

- **Gaussian amplitude jitter** per emitted segment,
- **slow frequency drift** (a bounded random walk shared across
  regimes, modelling temperature/load drift of the host structure), and
- **dropout / burst segments** (excitation briefly dies or spikes).

Everything is driven by one :class:`numpy.random.Generator`, so the same
seed always produces byte-identical segment lists, on every platform.

Families
--------
A :class:`ScenarioFamily` is a recipe for a set of scenarios:
``family.expand(n, seed)`` returns ``grid-points x n`` fully-specified
scenarios whose profile seeds and measurement-noise seeds are both
derived from ``(seed, grid_index, replicate)`` via
:func:`repro.rng.derive_seed`.  Expansion is pure: the same family, ``n``
and ``seed`` produce bit-identical scenario lists, which is what makes
batch results reproducible for any worker count.

Five stochastic families ship in :data:`FAMILY_LIBRARY`
(``factory-floor``, ``vehicle``, ``hvac``, ``intermittent``,
``worst-case-drift``); ``repro-wsn gen-scenarios FAMILY --n N --seed S``
writes their expansions as JSON manifests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigError, DesignError, ModelError
from repro.rng import SeedLike, derive_seed, ensure_rng
from repro.scenario import PartsSpec, Scenario
from repro.system.config import ORIGINAL_DESIGN, SystemConfig
from repro.system.vibration import VibrationProfile, VibrationSegment
from repro.units import mg_to_mps2

#: Version stamp written into every expansion manifest.
MANIFEST_SCHEMA = 1

#: Salt separating the profile-generation stream from the
#: measurement-noise stream of the same (seed, grid, replicate) triple.
_PROFILE_STREAM = 0
_NOISE_STREAM = 1


def _pair(value, what: str) -> Tuple[float, float]:
    """Normalise a (lo, hi) range, accepting a bare scalar as (x, x)."""
    if isinstance(value, (int, float)):
        value = (float(value), float(value))
    lo, hi = float(value[0]), float(value[1])
    if hi < lo:
        raise ModelError(f"{what} range must satisfy lo <= hi, got ({lo:g}, {hi:g})")
    return (lo, hi)


@dataclass(frozen=True)
class EnvironmentState:
    """One regime of a vibration environment.

    Parameters
    ----------
    name:
        Label carried into diagnostics.
    frequency_hz:
        Uniform range the regime's base frequency is drawn from at each
        regime entry.
    accel_mg:
        Uniform range for the regime's base acceleration (milli-g).
    dwell_s:
        Uniform range for how long the chain stays in this regime.
    """

    name: str
    frequency_hz: Tuple[float, float]
    accel_mg: Tuple[float, float]
    dwell_s: Tuple[float, float]

    def __post_init__(self) -> None:
        object.__setattr__(self, "frequency_hz", _pair(self.frequency_hz, "frequency"))
        object.__setattr__(self, "accel_mg", _pair(self.accel_mg, "acceleration"))
        object.__setattr__(self, "dwell_s", _pair(self.dwell_s, "dwell time"))
        if self.frequency_hz[0] <= 0.0:
            raise ModelError("regime frequencies must be > 0")
        if self.accel_mg[0] < 0.0:
            raise ModelError("regime acceleration must be >= 0")
        if self.dwell_s[0] <= 0.0:
            raise ModelError("regime dwell times must be > 0")


@dataclass(frozen=True)
class RegimeSwitchingVibration:
    """Markov regime-switching vibration-profile generator.

    Parameters
    ----------
    states:
        The environment regimes.
    transitions:
        Row-stochastic matrix ``transitions[i][j]`` = probability of
        moving from regime ``i`` to regime ``j`` when a dwell ends.
        ``None`` means uniform over the *other* states (always leave).
    jitter_mg:
        Standard deviation of per-segment Gaussian amplitude jitter.
    drift_hz_per_hour:
        RMS slow frequency drift accumulated per hour (a bounded random
        walk added to every regime's base frequency).
    drift_band_hz:
        Hard clamp for base + drift, keeping frequencies physical; the
        default brackets the harvester's 60-80 Hz tunable band.
    dropout_prob:
        Per-segment probability the excitation dies (acceleration -> 0).
    burst_prob:
        Per-segment probability of an amplitude burst.
    burst_gain:
        Multiplier applied to a burst segment's amplitude.
    resolution_s:
        Emitted segment length: jitter, drift, dropout and burst are
        re-drawn on this grid inside each regime dwell.
    """

    states: Tuple[EnvironmentState, ...]
    transitions: Optional[Tuple[Tuple[float, ...], ...]] = None
    jitter_mg: float = 0.0
    drift_hz_per_hour: float = 0.0
    drift_band_hz: Tuple[float, float] = (55.0, 85.0)
    dropout_prob: float = 0.0
    burst_prob: float = 0.0
    burst_gain: float = 2.0
    resolution_s: float = 30.0

    def __post_init__(self) -> None:
        states = tuple(self.states)
        object.__setattr__(self, "states", states)
        if not states:
            raise ModelError("generator needs at least one environment state")
        object.__setattr__(self, "drift_band_hz", _pair(self.drift_band_hz, "drift band"))
        if self.drift_band_hz[0] <= 0.0:
            raise ModelError("drift band must be positive")
        # The band clamps base + drift during generation; a regime whose
        # own frequency range pokes outside it would be silently rewritten
        # to the band edge, so reject the configuration instead.
        lo_b, hi_b = self.drift_band_hz
        for state in states:
            lo_f, hi_f = state.frequency_hz
            if lo_f < lo_b or hi_f > hi_b:
                raise ModelError(
                    f"regime {state.name!r} frequency range ({lo_f:g}, {hi_f:g}) Hz "
                    f"lies outside drift_band_hz ({lo_b:g}, {hi_b:g}); widen the "
                    f"band or move the regime"
                )
        if self.jitter_mg < 0.0 or self.drift_hz_per_hour < 0.0:
            raise ModelError("jitter and drift magnitudes must be >= 0")
        if not 0.0 <= self.dropout_prob <= 1.0 or not 0.0 <= self.burst_prob <= 1.0:
            raise ModelError("dropout/burst probabilities must be in [0, 1]")
        if self.dropout_prob + self.burst_prob > 1.0:
            raise ModelError("dropout_prob + burst_prob must be <= 1")
        if self.burst_gain < 0.0:
            raise ModelError("burst_gain must be >= 0")
        if self.resolution_s <= 0.0:
            raise ModelError("resolution_s must be > 0")
        if self.transitions is not None:
            rows = tuple(tuple(float(p) for p in row) for row in self.transitions)
            object.__setattr__(self, "transitions", rows)
            n = len(states)
            if len(rows) != n or any(len(row) != n for row in rows):
                raise ModelError(
                    f"transition matrix must be {n}x{n} to match the states"
                )
            for i, row in enumerate(rows):
                if any(p < 0.0 for p in row) or not math.isclose(
                    sum(row), 1.0, abs_tol=1e-9
                ):
                    raise ModelError(
                        f"transition row {i} must be non-negative and sum to 1"
                    )

    # -- generation -----------------------------------------------------------

    def generate(self, horizon: float, seed: SeedLike = 0) -> VibrationProfile:
        """Emit one deterministic profile covering ``[0, horizon]``.

        The same ``seed`` always yields an identical segment list; pass a
        live generator to continue an existing stream.
        """
        if horizon <= 0.0:
            raise ModelError("generation horizon must be positive")
        rng = ensure_rng(seed)
        n = len(self.states)
        state_i = int(rng.integers(n))
        # Per-step drift so that the walk's RMS after one hour equals
        # drift_hz_per_hour regardless of the segment resolution.
        steps_per_hour = 3600.0 / self.resolution_s
        drift_step = self.drift_hz_per_hour / math.sqrt(max(steps_per_hour, 1.0))
        drift = 0.0
        lo_f, hi_f = self.drift_band_hz

        segments: List[VibrationSegment] = []
        t = 0.0
        while t < horizon:
            state = self.states[state_i]
            dwell = float(rng.uniform(*state.dwell_s))
            base_f = float(rng.uniform(*state.frequency_hz))
            base_a = float(rng.uniform(*state.accel_mg))
            t_end = min(t + dwell, horizon)
            while t < t_end - 1e-9:
                accel = base_a
                if self.jitter_mg > 0.0:
                    accel += float(rng.normal(0.0, self.jitter_mg))
                if self.drift_hz_per_hour > 0.0:
                    drift += float(rng.normal(0.0, drift_step))
                u = float(rng.uniform())
                if u < self.dropout_prob:
                    accel = 0.0
                elif u < self.dropout_prob + self.burst_prob:
                    accel *= self.burst_gain
                freq = min(max(base_f + drift, lo_f), hi_f)
                segments.append(
                    VibrationSegment(t, freq, mg_to_mps2(max(accel, 0.0)))
                )
                t += self.resolution_s
            t = t_end
            state_i = self._next_state(state_i, rng)
        return VibrationProfile(segments)

    def _next_state(self, current: int, rng) -> int:
        n = len(self.states)
        if n == 1:
            return 0
        if self.transitions is None:
            # Uniform over the other states: regimes always hand over.
            step = int(rng.integers(1, n))
            return (current + step) % n
        u = float(rng.uniform())
        acc = 0.0
        for j, p in enumerate(self.transitions[current]):
            acc += p
            if u < acc:
                return j
        return n - 1


# -- scenario families --------------------------------------------------------


class ScenarioFamily:
    """Base class: a deterministic recipe for a list of scenarios.

    Subclasses implement :meth:`expand`; everything else (manifests, the
    CLI, :meth:`repro.core.batch.BatchRunner.run_family`) is generic.
    Expansion must be pure -- the same ``(n, seed)`` always returns a
    bit-identical scenario list -- which is what lets batches of family
    members reproduce for any worker count.
    """

    #: Subclasses provide the family label (dataclass field or attribute).
    name: str

    def expand(self, n: int = 1, seed: SeedLike = 0) -> List[Scenario]:
        """Materialise ``n`` replicates per grid point."""
        raise NotImplementedError

    def manifest(self, n: int = 1, seed: int = 0) -> dict:
        """JSON-ready expansion manifest (family, inputs, scenarios)."""
        scenarios = self.expand(n=n, seed=seed)
        return {
            "schema": MANIFEST_SCHEMA,
            "family": self.name,
            "n": int(n),
            "seed": int(seed),
            "count": len(scenarios),
            "scenarios": [s.to_dict() for s in scenarios],
        }


@dataclass(frozen=True, eq=False)
class StochasticFamily(ScenarioFamily):
    """A stochastic environment crossed with a configuration grid.

    ``expand(n, seed)`` walks the cross-product of the ``grid`` axes
    (fields of :class:`~repro.system.config.SystemConfig`) and emits
    ``n`` replicates per grid point.  Replicate ``r`` of grid point ``g``
    draws its vibration profile and its initial storage voltage from
    ``derive_seed(seed, g, r, 0)`` and runs its measurement noise on
    ``derive_seed(seed, g, r, 1)``, so profiles and noise are independent
    streams but both fully determined by the family seed.
    """

    name: str
    generator: RegimeSwitchingVibration
    config: SystemConfig = ORIGINAL_DESIGN
    horizon: float = 3600.0
    backend: str = "envelope"
    v_init: Tuple[float, float] = (2.65, 2.65)
    grid: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    options: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("family name must be non-empty")
        if self.horizon <= 0.0:
            raise ConfigError("family horizon must be positive")
        object.__setattr__(self, "v_init", _pair(self.v_init, "v_init"))
        if isinstance(self.grid, Mapping):
            grid = tuple(self.grid.items())
        else:
            grid = tuple(self.grid)
        grid = tuple((str(k), tuple(float(v) for v in vs)) for k, vs in grid)
        valid = {"clock_hz", "watchdog_s", "tx_interval_s"}
        for axis, values in grid:
            if axis not in valid:
                raise ConfigError(
                    f"unknown grid axis {axis!r} (known: {', '.join(sorted(valid))})"
                )
            if not values:
                raise ConfigError(f"grid axis {axis!r} needs at least one value")
        object.__setattr__(self, "grid", grid)
        if isinstance(self.options, Mapping):
            object.__setattr__(self, "options", tuple(self.options.items()))
        else:
            object.__setattr__(self, "options", tuple(self.options))

    # -- expansion ------------------------------------------------------------

    def grid_points(self) -> List[Dict[str, float]]:
        """The cross-product of the grid axes as config-field overrides."""
        points: List[Dict[str, float]] = [{}]
        for axis, values in self.grid:
            points = [{**p, axis: v} for p in points for v in values]
        return points

    def expand(self, n: int = 1, seed: SeedLike = 0) -> List[Scenario]:
        if n < 1:
            raise ConfigError("need at least one replicate per grid point")
        base = 0 if seed is None else seed
        if not isinstance(base, int):
            # A live generator seeds the whole expansion once, keeping
            # the per-replicate derivation below deterministic.
            base = int(ensure_rng(base).integers(0, 2**31 - 1))
        scenarios: List[Scenario] = []
        options = dict(self.options)
        for g, overrides in enumerate(self.grid_points()):
            config = (
                replace(self.config, **overrides) if overrides else self.config
            )
            for r in range(n):
                env_rng = ensure_rng(derive_seed(base, g, r, _PROFILE_STREAM))
                profile = self.generator.generate(self.horizon, env_rng)
                lo, hi = self.v_init
                v0 = lo if hi <= lo else float(env_rng.uniform(lo, hi))
                scenarios.append(
                    Scenario(
                        config=config,
                        parts=PartsSpec(
                            v_init=v0, initial_frequency=profile.frequency(0.0)
                        ),
                        profile=profile,
                        horizon=self.horizon,
                        seed=derive_seed(base, g, r, _NOISE_STREAM),
                        backend=self.backend,
                        options=options,
                        name=f"{self.name}/g{g}r{r}",
                    )
                )
        return scenarios


@dataclass(frozen=True, eq=False)
class FixedFamily(ScenarioFamily):
    """A family over an explicit scenario list (the degenerate grid).

    Wraps hand-built scenario grids (e.g. the robustness study's
    one-factor-at-a-time perturbations) in the family interface.
    Replicate 0 keeps each base scenario's own seed (or takes the family
    seed verbatim when the base has none); additional replicates get
    seeds derived from ``(seed, grid_index, replicate)``.
    """

    name: str
    scenarios: Tuple[Scenario, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise ConfigError("fixed family needs at least one scenario")

    def expand(self, n: int = 1, seed: SeedLike = 0) -> List[Scenario]:
        if n < 1:
            raise ConfigError("need at least one replicate per grid point")
        base = 0 if seed is None else int(seed) if isinstance(seed, int) else int(
            ensure_rng(seed).integers(0, 2**31 - 1)
        )
        out: List[Scenario] = []
        for g, scenario in enumerate(self.scenarios):
            for r in range(n):
                if r == 0:
                    s = (
                        scenario
                        if scenario.seed is not None
                        else scenario.with_seed(base)
                    )
                else:
                    s = replace(
                        scenario,
                        seed=derive_seed(base, g, r),
                        name=f"{scenario.name}/r{r}",
                    )
                out.append(s)
        return out


def manifest_scenarios(payload: Mapping) -> List[Scenario]:
    """Rebuild the scenario list from a :meth:`ScenarioFamily.manifest`.

    Accepts the parsed JSON object; unknown schema versions and
    non-manifest payloads raise :class:`~repro.errors.DesignError`.
    """
    if not isinstance(payload, Mapping) or "scenarios" not in payload:
        raise DesignError(
            "payload is not a scenario manifest (no 'scenarios' list)"
        )
    schema = payload.get("schema", MANIFEST_SCHEMA)
    if schema != MANIFEST_SCHEMA:
        raise DesignError(
            f"unsupported manifest schema {schema!r} "
            f"(this library reads schema {MANIFEST_SCHEMA})"
        )
    return [Scenario.from_dict(entry) for entry in payload["scenarios"]]


# -- named family library -----------------------------------------------------


# The harvester's usable bandwidth is well under 1 Hz and a full-band
# actuator move costs ~250 mJ (a third of the 2.6->2.65 V headroom), so
# viable environments keep regime frequencies within a few Hz of each
# other, hold them for several watchdog periods (320 s default), and
# carry enough acceleration in the productive regimes to pay for the
# retunes.  ``worst-case-drift`` deliberately violates all of that.


def _factory_floor() -> StochasticFamily:
    """Shop-floor machinery: long production runs, idle gaps, fork-lift
    transients, mild mains-locked drift."""
    return StochasticFamily(
        name="factory-floor",
        generator=RegimeSwitchingVibration(
            states=(
                EnvironmentState("idle", (63.0, 64.0), (5.0, 15.0), (180.0, 600.0)),
                EnvironmentState(
                    "machining", (64.0, 66.0), (75.0, 110.0), (600.0, 1800.0)
                ),
                EnvironmentState(
                    "transport", (65.0, 68.0), (30.0, 60.0), (120.0, 360.0)
                ),
            ),
            transitions=(
                (0.10, 0.70, 0.20),
                (0.25, 0.60, 0.15),
                (0.40, 0.40, 0.20),
            ),
            jitter_mg=5.0,
            drift_hz_per_hour=0.5,
            dropout_prob=0.02,
        ),
        v_init=(2.70, 2.80),
    )


def _vehicle() -> StochasticFamily:
    """Vehicle-mounted node: idle / cruise / rough-road regimes with
    engine-order frequency wander and pothole bursts."""
    return StochasticFamily(
        name="vehicle",
        generator=RegimeSwitchingVibration(
            states=(
                EnvironmentState("idle", (63.0, 64.5), (10.0, 25.0), (60.0, 240.0)),
                EnvironmentState(
                    "cruise", (64.0, 67.0), (50.0, 80.0), (300.0, 1200.0)
                ),
                EnvironmentState(
                    "rough-road", (63.0, 69.0), (90.0, 130.0), (60.0, 180.0)
                ),
            ),
            jitter_mg=10.0,
            drift_hz_per_hour=1.0,
            burst_prob=0.05,
            burst_gain=1.8,
            resolution_s=15.0,
        ),
        v_init=(2.70, 2.80),
    )


def _hvac() -> StochasticFamily:
    """Building HVAC duct: fan cycling between off and on with very
    stable excitation while running."""
    return StochasticFamily(
        name="hvac",
        generator=RegimeSwitchingVibration(
            states=(
                EnvironmentState(
                    "fan-off", (63.5, 64.5), (2.0, 8.0), (300.0, 900.0)
                ),
                EnvironmentState(
                    "fan-on", (64.0, 66.0), (45.0, 65.0), (900.0, 2700.0)
                ),
            ),
            jitter_mg=2.0,
            drift_hz_per_hour=0.3,
            resolution_s=60.0,
        ),
        v_init=(2.70, 2.78),
    )


def _intermittent() -> StochasticFamily:
    """Duty-cycled source: strong bursts separated by dead stretches,
    plus heavy random dropouts inside the bursts."""
    return StochasticFamily(
        name="intermittent",
        generator=RegimeSwitchingVibration(
            states=(
                EnvironmentState(
                    "burst", (64.0, 67.0), (70.0, 100.0), (120.0, 400.0)
                ),
                EnvironmentState("dead", (63.0, 65.0), (0.0, 3.0), (60.0, 300.0)),
            ),
            jitter_mg=4.0,
            dropout_prob=0.10,
            burst_prob=0.05,
            burst_gain=1.5,
        ),
        v_init=(2.68, 2.78),
    )


def _worst_case_drift() -> StochasticFamily:
    """Adversarial tuner stressor: weak excitation whose frequency walks
    across the whole 60-80 Hz tunable band as fast as is plausible, so
    every retune is expensive and soon stale."""
    return StochasticFamily(
        name="worst-case-drift",
        generator=RegimeSwitchingVibration(
            states=(
                EnvironmentState("drift", (60.0, 80.0), (40.0, 60.0), (120.0, 300.0)),
            ),
            jitter_mg=8.0,
            drift_hz_per_hour=15.0,
            drift_band_hz=(58.0, 82.0),
            resolution_s=15.0,
        ),
        v_init=(2.65, 2.75),
    )


#: Factories for the named stochastic families (fresh value per call).
FAMILY_LIBRARY: Dict[str, Callable[[], StochasticFamily]] = {
    "factory-floor": _factory_floor,
    "vehicle": _vehicle,
    "hvac": _hvac,
    "intermittent": _intermittent,
    "worst-case-drift": _worst_case_drift,
}


def family_names() -> List[str]:
    """Names accepted by :func:`named_family`."""
    return sorted(FAMILY_LIBRARY)


def named_family(name: str) -> StochasticFamily:
    """Instantiate a library scenario family by name."""
    try:
        factory = FAMILY_LIBRARY[name]
    except KeyError:
        known = ", ".join(family_names())
        raise ConfigError(f"unknown scenario family {name!r} (known: {known})") from None
    return factory()
