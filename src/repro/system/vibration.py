"""Input vibration profiles.

The paper's evaluation fixes the acceleration level at 60 mg and steps the
dominant frequency by +5 Hz every 25 minutes (Fig. 5).  The profile class
is piecewise-constant in both frequency and amplitude, which matches how
the paper (and most harvester testbeds) drive their shakers; arbitrary
segment lists support the extension examples.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ModelError
from repro.units import mg_to_mps2


@dataclass(frozen=True)
class VibrationSegment:
    """A stretch of constant excitation starting at ``t_start``."""

    t_start: float
    frequency_hz: float
    accel_mps2: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise ModelError("vibration frequency must be > 0")
        if self.accel_mps2 < 0.0:
            raise ModelError("acceleration must be >= 0")


class VibrationProfile:
    """Piecewise-constant excitation profile.

    Profiles are immutable value objects: two profiles compare (and hash)
    equal iff their segment lists are identical, and :meth:`to_payload` /
    :meth:`from_payload` round-trip them through plain JSON types so
    scenarios can be serialised (:mod:`repro.scenario`).
    """

    def __init__(self, segments: Sequence[VibrationSegment]):
        if not segments:
            raise ModelError("profile needs at least one segment")
        ordered = sorted(segments, key=lambda s: s.t_start)
        if ordered[0].t_start > 0.0:
            raise ModelError("first segment must start at t <= 0")
        starts = [s.t_start for s in ordered]
        if len(set(starts)) != len(starts):
            raise ModelError("segments must have distinct start times")
        self.segments: List[VibrationSegment] = list(ordered)
        self._starts = starts

    @classmethod
    def constant(cls, frequency_hz: float, accel_mg: float = 60.0) -> "VibrationProfile":
        """A fixed excitation (useful for unit tests and characterisation)."""
        return cls([VibrationSegment(0.0, frequency_hz, mg_to_mps2(accel_mg))])

    @classmethod
    def paper_profile(
        cls,
        f_start: float = 64.0,
        f_step: float = 5.0,
        step_period: float = 1500.0,
        horizon: float = 3600.0,
        accel_mg: float = 60.0,
    ) -> "VibrationProfile":
        """The evaluation profile: 60 mg, +5 Hz every 25 minutes."""
        accel = mg_to_mps2(accel_mg)
        segments = []
        t, f = 0.0, f_start
        while t < horizon:
            segments.append(VibrationSegment(t, f, accel))
            t += step_period
            f += f_step
        return cls(segments)

    # -- value semantics ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VibrationProfile):
            return NotImplemented
        return self.segments == other.segments

    def __hash__(self) -> int:
        return hash(tuple(self.segments))

    def __repr__(self) -> str:
        return f"VibrationProfile({len(self.segments)} segments)"

    # -- serialisation --------------------------------------------------------

    def to_payload(self) -> "List[dict]":
        """Plain-JSON representation (a list of segment dicts)."""
        return [
            {
                "t_start": s.t_start,
                "frequency_hz": s.frequency_hz,
                "accel_mps2": s.accel_mps2,
            }
            for s in self.segments
        ]

    @classmethod
    def from_payload(cls, payload: Sequence[dict]) -> "VibrationProfile":
        """Rebuild a profile from :meth:`to_payload` output.

        Unlike the constructor (which accepts any order from programmatic
        callers and sorts), a payload is an ordered document:
        out-of-order or overlapping ``t_start`` values almost always mean
        a corrupted or hand-edited file, and silently re-sorting would
        run a different excitation than the author wrote.  Both cases
        raise :class:`~repro.errors.ModelError`.
        """
        starts = [float(s["t_start"]) for s in payload]
        for prev, cur in zip(starts, starts[1:]):
            if cur == prev:
                raise ModelError(
                    f"profile payload has overlapping segments: t_start "
                    f"{cur:g} appears more than once"
                )
            if cur < prev:
                raise ModelError(
                    f"profile payload segments must be sorted by t_start "
                    f"(found {cur:g} after {prev:g})"
                )
        return cls(
            [
                VibrationSegment(
                    t_start=float(s["t_start"]),
                    frequency_hz=float(s["frequency_hz"]),
                    accel_mps2=float(s["accel_mps2"]),
                )
                for s in payload
            ]
        )

    # -- queries -------------------------------------------------------------

    def at(self, t: float) -> VibrationSegment:
        """The active segment at time ``t``."""
        idx = bisect.bisect_right(self._starts, t) - 1
        return self.segments[max(idx, 0)]

    def frequency(self, t: float) -> float:
        """Dominant excitation frequency (Hz) at ``t``."""
        return self.at(t).frequency_hz

    def acceleration(self, t: float) -> float:
        """Acceleration amplitude (m/s^2) at ``t``."""
        return self.at(t).accel_mps2

    def change_times(self, t_from: float, t_to: float) -> List[float]:
        """Segment boundaries inside ``(t_from, t_to)`` -- breakpoints for
        event-driven simulators."""
        return [s.t_start for s in self.segments if t_from < s.t_start < t_to]

    def frequency_span(self) -> Tuple[float, float]:
        """(min, max) frequency over all segments."""
        freqs = [s.frequency_hz for s in self.segments]
        return min(freqs), max(freqs)
