"""Table I component registry and the calibrated default system.

The paper's hardware (Table I):

================  =================  ==================
Component         Type               Make
================  =================  ==================
Microcontroller   PIC16F884          Microchip
Accelerometer     LIS3L06AL          STMicroelectronics
Linear actuator   21000 Series       Haydon (size 8 stepper)
Sensor node       eZ430-RF2500       Texas Instruments
================  =================  ==================

The tunable microgenerator itself (Garcia et al., PowerMEMS'09) is not
fully specified in the paper, so this module fixes a *calibrated*
parameter set chosen to reproduce the paper's energy scale:

- 50 g proof mass, mechanical damping ratio 0.004, electrical damping
  ratio 0.008 (loaded Q ~42), untuned resonance 50 Hz, magnetically
  tunable across 60-80 Hz;
- transduction 68 V.s/m: peak EMF 4.1 V at 64 Hz / 60 mg on resonance,
  falling as 1/f across the tuning range (constant-acceleration SDOF
  physics), so the rectified open-circuit ceiling runs from ~3.45 V at
  64 Hz down to ~2.9 V at 74 Hz;
- delivered power is the *minimum* of the rectifier's Thevenin limit
  (3.3 kohm effective source resistance) and 42% of the resonator's
  electrical-damping power -- roughly 250 uW at the 64 Hz segment and
  tapering with frequency and storage voltage.  That uW-class budget is
  what makes the paper's numbers come out: ~400 transmissions/hour for
  the original design and ~2x for the optimised ones at 227 uJ each.

The envelope constants are calibrated jointly rather than derived from a
single transducer datasheet (none exists for the prototype); the detailed
MNA model in :mod:`repro.system.detailed` is self-consistent (its theta
produces its own electrical damping) and is compared qualitatively in the
backend-agreement tests.  Everything downstream (Table VI ratios,
Fig. 4/5 shapes) follows from these constants plus the published
Tables II-IV; see EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.digital.lut import FrequencyLut
from repro.digital.mcu import Microcontroller
from repro.digital.power_model import AccelerometerPower, McuPowerModel
from repro.harvester.actuator import LinearActuator
from repro.harvester.microgenerator import TunableMicrogenerator
from repro.harvester.rectifier import RectifierEnvelope
from repro.harvester.storage import EnergyStore
from repro.harvester.tuning_map import TuningMap
from repro.mech.coupling import ElectromagneticCoupling
from repro.mech.magnetics import MagneticTuner
from repro.mech.sdof import SdofResonator
from repro.node.ez430 import SensorNode
from repro.node.policy import TransmissionPolicy

#: Paper Table I.
COMPONENT_REGISTRY: Dict[str, Dict[str, str]] = {
    "microcontroller": {"type": "PIC16F884", "make": "Microchip"},
    "accelerometer": {"type": "LIS3L06AL", "make": "STMicroelectronics"},
    "linear_actuator": {"type": "21000 Series size 8 stepper", "make": "Haydon"},
    "sensor_node": {"type": "eZ430-RF2500", "make": "Texas Instruments"},
}

# -- calibrated microgenerator constants (see module docstring) --------------

#: Proof mass (kg) of the EM harvester.
PROOF_MASS = 0.05
#: Mechanical (parasitic) damping ratio.
ZETA_MECH = 0.004
#: Electrical (transduction) damping ratio at the nominal load.
ZETA_ELEC = 0.008
#: Untuned (magnet fully retracted) resonance in Hz.
UNTUNED_FREQUENCY = 50.0
#: Transduction constant (V.s/m).
THETA = 68.0
#: Coil resistance (ohm) -- also the envelope's DC source resistance.
COIL_RESISTANCE = 3300.0
#: Coil inductance (H); negligible reactance at 60-80 Hz but modelled.
COIL_INDUCTANCE = 0.5
#: Fraction of electrical-damping power deliverable to storage.
MECH_EFFICIENCY = 0.42
#: Tuning-magnet gap range (m): 10 mm (stiffest) to 13 mm.
GAP_MIN = 0.010
GAP_MAX = 0.013
#: Tunable frequency range (Hz).
TUNE_LOW = 60.0
TUNE_HIGH = 80.0
#: Storage (paper: 0.55 F supercapacitor); calibrated initial voltage.
STORE_CAPACITANCE = 0.55
STORE_V_INIT = 2.65
STORE_V_MAX = 3.6
#: LUT frequency axis (slightly wider than the tuning range).
LUT_F_MIN = 58.0
LUT_F_MAX = 82.0


def paper_resonator() -> SdofResonator:
    """The untuned SDOF resonator of the calibrated harvester."""
    stiffness = PROOF_MASS * (2.0 * math.pi * UNTUNED_FREQUENCY) ** 2
    return SdofResonator(
        mass=PROOF_MASS,
        stiffness=stiffness,
        zeta_mech=ZETA_MECH,
        zeta_elec=ZETA_ELEC,
    )


def paper_coupling() -> ElectromagneticCoupling:
    """Transducer constants of the calibrated generator."""
    return ElectromagneticCoupling(
        theta=THETA,
        coil_resistance=COIL_RESISTANCE,
        coil_inductance=COIL_INDUCTANCE,
    )


def paper_tuner(resonator: Optional[SdofResonator] = None) -> MagneticTuner:
    """Magnetic tuning mechanism spanning 60-80 Hz."""
    res = resonator or paper_resonator()
    return MagneticTuner.for_frequency_range(
        res.mass, res.stiffness, TUNE_LOW, TUNE_HIGH, gap_min=GAP_MIN, gap_max=GAP_MAX
    )


def paper_tuning_map() -> TuningMap:
    """Position -> resonance map over the 8-bit actuator travel."""
    resonator = paper_resonator()
    return TuningMap(resonator, paper_tuner(resonator), n_positions=256)


def paper_microgenerator(
    tuning_map: Optional[TuningMap] = None,
) -> TunableMicrogenerator:
    """The complete tunable microgenerator (map + actuator + envelope).

    ``tuning_map`` lets callers share one pre-characterised map across
    many instances (it is immutable during simulation); the default
    builds a fresh one.
    """
    tuning_map = paper_tuning_map() if tuning_map is None else tuning_map
    actuator = LinearActuator(max_steps=255, steps_per_position=1)
    return TunableMicrogenerator(
        tuning_map,
        paper_coupling(),
        actuator=actuator,
        rectifier=RectifierEnvelope(),
        source_resistance=COIL_RESISTANCE,
        mech_efficiency=MECH_EFFICIENCY,
    )


def paper_store(v_init: float = STORE_V_INIT) -> EnergyStore:
    """The 0.55 F supercapacitor at its calibrated starting voltage."""
    return EnergyStore(
        capacitance=STORE_CAPACITANCE, v_init=v_init, v_max=STORE_V_MAX
    )


def paper_lut(tuning_map: Optional[TuningMap] = None) -> FrequencyLut:
    """The factory-characterised 8-bit frequency->position table."""
    return FrequencyLut.from_tuning_map(
        tuning_map or paper_tuning_map(), LUT_F_MIN, LUT_F_MAX, n_entries=256
    )


@dataclass
class SystemParts:
    """Every physical piece of the Fig. 2 system, ready to simulate."""

    microgenerator: TunableMicrogenerator
    store: EnergyStore
    node: SensorNode
    lut: FrequencyLut
    mcu_power: McuPowerModel = field(default_factory=McuPowerModel)
    accelerometer: AccelerometerPower = field(default_factory=AccelerometerPower)

    def mcu(self, clock_hz: float) -> Microcontroller:
        """Instantiate the MCU at a configuration's clock frequency."""
        return Microcontroller(
            clock_hz, power=self.mcu_power, accelerometer=self.accelerometer
        )

    def policy(self, tx_interval_s: float) -> TransmissionPolicy:
        """Instantiate the node policy at a configuration's fast interval."""
        return TransmissionPolicy(fast_interval=tx_interval_s)


def paper_system(
    v_init: float = STORE_V_INIT,
    initial_position: Optional[int] = None,
    initial_frequency: float = 64.0,
    tuning_map: Optional[TuningMap] = None,
    lut: Optional[FrequencyLut] = None,
) -> SystemParts:
    """Assemble the calibrated default system.

    Parameters
    ----------
    v_init:
        Supercapacitor starting voltage.
    initial_position:
        Actuator starting position; defaults to the LUT optimum for
        ``initial_frequency`` (the harvester was running and tuned before
        the evaluated hour begins, as in the paper's Fig. 5 setup).
    tuning_map, lut:
        Optional pre-characterised physics to share across instances
        (both are immutable during simulation; the vectorized batch
        backend builds them once per process instead of once per lane).
        Defaults build fresh ones.
    """
    micro = paper_microgenerator(tuning_map)
    lut = paper_lut(micro.tuning_map) if lut is None else lut
    if initial_position is None:
        initial_position = lut.lookup(initial_frequency)
    micro.actuator.steps = micro.actuator.steps_for_position(initial_position)
    return SystemParts(
        microgenerator=micro,
        store=paper_store(v_init),
        node=SensorNode(),
        lut=lut,
    )
