"""Seedable random-number helpers.

Every stochastic component of the library (measurement noise, simulated
annealing, the genetic algorithm, Latin-hypercube sampling...) accepts either
an integer seed or a ready-made :class:`numpy.random.Generator`.  Routing
everything through :func:`ensure_rng` keeps the whole reproduction
deterministic: the benchmark harness fixes one seed and every run of it
produces identical tables.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh unpredictable generator), an ``int`` seed, or an
        existing generator (returned unchanged so that callers can thread a
        single stream through several components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> "list[np.random.Generator]":
    """Split ``rng`` into ``n`` independent child generators.

    Used when a driver (e.g. the DSE campaign) hands independent noise
    streams to parallel simulation runs so that run ``i`` is reproducible
    regardless of how many runs execute before it.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(base_seed: Optional[int], *components: int) -> int:
    """Derive a deterministic child seed from a base seed and index tuple.

    A small splitmix-style hash; good enough to decorrelate streams while
    remaining stable across platforms and Python versions.
    """
    state = (0 if base_seed is None else int(base_seed)) & 0xFFFFFFFFFFFFFFFF
    for comp in components:
        state = (state ^ (int(comp) & 0xFFFFFFFFFFFFFFFF)) & 0xFFFFFFFFFFFFFFFF
        state = (state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        z = state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        state = z ^ (z >> 31)
    return int(state & 0x7FFFFFFFFFFFFFFF)
