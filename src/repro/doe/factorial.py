"""Full and fractional factorial designs.

The paper contrasts its 10-run D-optimal design against the 27-run
(3-level) full factorial; :func:`full_factorial` builds exactly that
reference.  Two-level designs (and their regular fractions defined by
generator strings like ``"d=abc"``) are included for screening workflows.
"""

from __future__ import annotations

import re
from itertools import product
from typing import Optional, Sequence

import numpy as np

from repro.doe.design import Design
from repro.errors import DesignError
from repro.rsm.coding import ParameterSpace


def full_factorial(
    k: int,
    n_levels: int = 3,
    space: Optional[ParameterSpace] = None,
) -> Design:
    """All combinations of ``n_levels`` evenly spaced coded levels.

    ``k=3, n_levels=3`` gives the paper's 27-run reference design.
    """
    if k < 1:
        raise DesignError("need k >= 1")
    if n_levels < 2:
        raise DesignError("need at least 2 levels")
    levels = np.linspace(-1.0, 1.0, n_levels)
    pts = np.array(list(product(levels, repeat=k)))
    return Design(pts, space=space, name=f"factorial-{n_levels}^{k}")


def two_level_factorial(k: int, space: Optional[ParameterSpace] = None) -> Design:
    """The 2^k design at the cube corners."""
    return full_factorial(k, 2, space=space)


def fractional_factorial(
    base_factors: int,
    generators: Sequence[str],
    space: Optional[ParameterSpace] = None,
) -> Design:
    """Regular two-level fraction defined by generator strings.

    Parameters
    ----------
    base_factors:
        Number of independent two-level factors (named a, b, c, ...).
    generators:
        Definitions of the remaining factors as products of base factors,
        e.g. ``["d=abc"]`` builds the 2^(4-1) half fraction.

    Example
    -------
    >>> d = fractional_factorial(3, ["d=abc"])
    >>> d.n_runs, d.k
    (8, 4)
    """
    if base_factors < 2:
        raise DesignError("need at least two base factors")
    if base_factors > 26:
        raise DesignError("too many factors for letter naming")
    base = two_level_factorial(base_factors).points
    names = [chr(ord("a") + i) for i in range(base_factors)]
    columns = [base[:, i] for i in range(base_factors)]
    for gen in generators:
        match = re.fullmatch(r"\s*([a-z])\s*=\s*([a-z]+)\s*", gen)
        if not match:
            raise DesignError(f"bad generator {gen!r}; expected like 'd=abc'")
        new_name, term = match.groups()
        if new_name in names:
            raise DesignError(f"generator redefines factor {new_name!r}")
        col = np.ones(base.shape[0])
        for letter in term:
            if letter not in names:
                raise DesignError(
                    f"generator {gen!r} uses unknown factor {letter!r}"
                )
            col = col * columns[names.index(letter)]
        names.append(new_name)
        columns.append(col)
    pts = np.column_stack(columns)
    frac = f"2^({len(names)}-{len(generators)})"
    return Design(pts, space=space, name=f"fractional-{frac}")
