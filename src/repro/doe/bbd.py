"""Box-Behnken designs.

Mid-edge points of the coded cube plus centre replicates; a three-level
second-order design that avoids the cube corners (useful when corners are
physically extreme -- e.g. max clock + min watchdog + min interval all at
once).
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Optional

import numpy as np

from repro.doe.design import Design
from repro.errors import DesignError
from repro.rsm.coding import ParameterSpace


def box_behnken(
    k: int, n_center: int = 1, space: Optional[ParameterSpace] = None
) -> Design:
    """Build the Box-Behnken design over ``k >= 3`` coded variables."""
    if k < 3:
        raise DesignError("Box-Behnken needs k >= 3")
    if n_center < 0:
        raise DesignError("n_center must be >= 0")
    rows = []
    for i, j in combinations(range(k), 2):
        for si, sj in product((-1.0, 1.0), repeat=2):
            pt = np.zeros(k)
            pt[i], pt[j] = si, sj
            rows.append(pt)
    rows.extend(np.zeros(k) for _ in range(n_center))
    return Design(np.array(rows), space=space, name=f"bbd-k{k}")
