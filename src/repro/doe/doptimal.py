"""D-optimal experimental design (paper section II-B).

Selects ``n`` runs from a candidate set so that the information matrix
``X'X`` of the intended regression model has maximal determinant -- the
criterion the paper uses to get a quadratic-capable design in 10 runs
instead of the 27-run full factorial.

Two classic exchange algorithms are provided:

- **Fedorov exchange** -- repeatedly swap the (design point, candidate)
  pair that most improves ``det(X'X)`` until no swap helps.
- **Coordinate exchange** -- improve one coordinate of one run at a time
  over the candidate levels (works without a combinatorial candidate set).

Problem sizes here are tiny (n ~ 10, p ~ 10, candidates ~ 27-125), so both
implementations recompute ``log det`` directly with numpy instead of using
rank-one update formulas; correctness over micro-optimisation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.doe.candidates import grid_candidates
from repro.doe.design import Design
from repro.errors import DesignError
from repro.rng import SeedLike, ensure_rng
from repro.rsm.basis import PolynomialBasis
from repro.rsm.coding import ParameterSpace


def d_optimal(
    k: int,
    n_runs: int,
    kind: str = "quadratic",
    candidates: Optional[np.ndarray] = None,
    method: str = "fedorov",
    n_restarts: int = 10,
    max_passes: int = 50,
    seed: SeedLike = None,
    space: Optional[ParameterSpace] = None,
) -> Design:
    """Build a D-optimal design for a polynomial model.

    Parameters
    ----------
    k:
        Number of design variables.
    n_runs:
        Runs to select; must be >= the model's coefficient count (the
        paper: 10 runs for the 10-coefficient quadratic in 3 variables).
    kind:
        Polynomial basis the design must support.
    candidates:
        Candidate coded points; defaults to the 3-level grid.
    method:
        ``"fedorov"`` or ``"coordinate"``.
    n_restarts:
        Independent random starts; the best final design wins.
    """
    basis = PolynomialBasis(k, kind)
    if n_runs < basis.n_terms:
        raise DesignError(
            f"{n_runs} runs cannot support a {basis.n_terms}-term model"
        )
    if method not in ("fedorov", "coordinate"):
        raise DesignError(f"unknown method {method!r}")
    cand = grid_candidates(k) if candidates is None else np.asarray(candidates, dtype=float)
    if cand.ndim != 2 or cand.shape[1] != k:
        raise DesignError("candidates must be an (m, k) array")
    rng = ensure_rng(seed)

    best_pts, best_logdet = None, -np.inf
    for _ in range(max(n_restarts, 1)):
        pts = _random_nonsingular_start(cand, n_runs, basis, rng)
        if method == "fedorov":
            pts, logdet = _fedorov(pts, cand, basis, max_passes)
        else:
            levels = np.unique(cand.ravel())
            pts, logdet = _coordinate_exchange(pts, levels, basis, max_passes)
        if logdet > best_logdet:
            best_pts, best_logdet = pts, logdet
    if best_pts is None or not np.isfinite(best_logdet):
        raise DesignError("failed to find a non-singular D-optimal design")
    return Design(best_pts, space=space, name=f"d-optimal-{n_runs}")


# -- internals -----------------------------------------------------------------


def _logdet(points: np.ndarray, basis: PolynomialBasis) -> float:
    X = basis.expand(points)
    sign, val = np.linalg.slogdet(X.T @ X)
    return val if sign > 0 else -np.inf


def _random_nonsingular_start(
    cand: np.ndarray, n_runs: int, basis: PolynomialBasis, rng
) -> np.ndarray:
    for _ in range(200):
        idx = rng.choice(len(cand), size=n_runs, replace=n_runs > len(cand))
        pts = cand[idx].copy()
        if np.isfinite(_logdet(pts, basis)):
            return pts
    raise DesignError(
        "could not draw a non-singular starting design; enlarge the "
        "candidate set or the run count"
    )


def _fedorov(
    pts: np.ndarray, cand: np.ndarray, basis: PolynomialBasis, max_passes: int
) -> "tuple[np.ndarray, float]":
    current = _logdet(pts, basis)
    for _ in range(max_passes):
        best_gain, best_swap = 0.0, None
        for i in range(len(pts)):
            saved = pts[i].copy()
            for j in range(len(cand)):
                pts[i] = cand[j]
                val = _logdet(pts, basis)
                gain = val - current
                if gain > best_gain + 1e-12:
                    best_gain, best_swap = gain, (i, j)
            pts[i] = saved
        if best_swap is None:
            break
        i, j = best_swap
        pts[i] = cand[j]
        current += best_gain
        current = _logdet(pts, basis)  # refresh to avoid drift
    return pts, current


def _coordinate_exchange(
    pts: np.ndarray, levels: np.ndarray, basis: PolynomialBasis, max_passes: int
) -> "tuple[np.ndarray, float]":
    current = _logdet(pts, basis)
    k = pts.shape[1]
    for _ in range(max_passes):
        improved = False
        for i in range(len(pts)):
            for c in range(k):
                saved = pts[i, c]
                best_val, best_level = current, saved
                for level in levels:
                    if level == saved:
                        continue
                    pts[i, c] = level
                    val = _logdet(pts, basis)
                    if val > best_val + 1e-12:
                        best_val, best_level = val, level
                pts[i, c] = best_level
                if best_level != saved:
                    current = best_val
                    improved = True
        if not improved:
            break
    return pts, current
