"""Design augmentation: extend an existing design D-optimally.

The practical sequel to the paper's 10-run design: after fitting a
saturated model, an engineer typically buys a few more runs to gain
residual degrees of freedom (lack-of-fit checks).  ``augment_d_optimal``
chooses those follow-up points so the *combined* design maximises
``det(X'X)`` -- existing runs are fixed, only the additions move.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.doe.candidates import grid_candidates
from repro.doe.design import Design
from repro.errors import DesignError
from repro.rng import SeedLike, ensure_rng
from repro.rsm.basis import PolynomialBasis


def augment_d_optimal(
    design: Design,
    n_additional: int,
    kind: str = "quadratic",
    candidates: Optional[np.ndarray] = None,
    n_restarts: int = 5,
    max_passes: int = 30,
    seed: SeedLike = None,
) -> Design:
    """Return ``design`` plus ``n_additional`` D-optimally chosen runs."""
    if n_additional < 1:
        raise DesignError("need at least one additional run")
    basis = PolynomialBasis(design.k, kind)
    cand = (
        grid_candidates(design.k)
        if candidates is None
        else np.asarray(candidates, dtype=float)
    )
    if cand.ndim != 2 or cand.shape[1] != design.k:
        raise DesignError("candidates must be an (m, k) array")
    rng = ensure_rng(seed)
    fixed = design.points

    def logdet(extra: np.ndarray) -> float:
        X = basis.expand(np.vstack([fixed, extra]))
        sign, val = np.linalg.slogdet(X.T @ X)
        return val if sign > 0 else -np.inf

    best_extra, best_val = None, -np.inf
    for _ in range(max(n_restarts, 1)):
        idx = rng.choice(len(cand), size=n_additional, replace=True)
        extra = cand[idx].copy()
        current = logdet(extra)
        for _ in range(max_passes):
            improved = False
            for i in range(n_additional):
                saved = extra[i].copy()
                best_j, best_local = None, current
                for j in range(len(cand)):
                    extra[i] = cand[j]
                    val = logdet(extra)
                    if val > best_local + 1e-12:
                        best_j, best_local = j, val
                if best_j is None:
                    extra[i] = saved
                else:
                    extra[i] = cand[best_j]
                    current = best_local
                    improved = True
            if not improved:
                break
        if current > best_val:
            best_extra, best_val = extra.copy(), current
    if best_extra is None or not np.isfinite(best_val):
        raise DesignError("augmentation failed to produce a usable design")
    return Design(
        np.vstack([fixed, best_extra]),
        space=design.space,
        name=f"{design.name}+aug{n_additional}",
    )
