"""Candidate point sets for optimal (computer-generated) designs.

D-optimal algorithms select runs from a finite candidate set; the paper
uses the three-level grid (the same 27 points as the full factorial),
which is also the default here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DesignError
from repro.rng import SeedLike, ensure_rng


def grid_candidates(k: int, n_levels: int = 3) -> np.ndarray:
    """The ``n_levels^k`` coded grid (3 levels -> [-1, 0, 1] per axis)."""
    if k < 1:
        raise DesignError("need k >= 1")
    if n_levels < 2:
        raise DesignError("need at least 2 levels")
    from itertools import product

    levels = np.linspace(-1.0, 1.0, n_levels)
    return np.array(list(product(levels, repeat=k)))


def random_candidates(k: int, n_points: int, seed: SeedLike = None) -> np.ndarray:
    """Uniform random candidates in the coded box."""
    if n_points < 1:
        raise DesignError("need at least one candidate")
    rng = ensure_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(n_points, k))
