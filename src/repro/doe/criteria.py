"""Design quality criteria.

All criteria are defined on the model matrix ``X`` of the intended
regression; efficiencies are scale-free so designs of different sizes can
be compared (the paper's 10-run D-optimal vs the 27-run factorial).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.doe.candidates import grid_candidates
from repro.doe.design import Design
from repro.errors import DesignError
from repro.rsm.basis import PolynomialBasis


def _model_matrix(design: Design, kind: str) -> np.ndarray:
    return design.model_matrix(kind)


def d_efficiency(design: Design, kind: str = "quadratic") -> float:
    """Normalised D-efficiency ``det(X'X / n)^(1/p)`` in [0, 1]-ish units.

    1.0 corresponds to the (unattainable) orthonormal information matrix;
    useful for *relative* comparison between designs for the same model.
    """
    X = _model_matrix(design, kind)
    n, p = X.shape
    sign, logdet = np.linalg.slogdet(X.T @ X / n)
    if sign <= 0:
        return 0.0
    return float(np.exp(logdet / p))


def a_efficiency(design: Design, kind: str = "quadratic") -> float:
    """A-efficiency ``p / trace((X'X / n)^-1)`` (harmonic-mean eigenvalue)."""
    X = _model_matrix(design, kind)
    n, p = X.shape
    try:
        inv = np.linalg.inv(X.T @ X / n)
    except np.linalg.LinAlgError:
        return 0.0
    tr = float(np.trace(inv))
    if tr <= 0:
        return 0.0
    return p / tr


def prediction_variance(
    design: Design, points: np.ndarray, kind: str = "quadratic"
) -> np.ndarray:
    """Scaled prediction variance ``n x'(X'X)^-1 x`` at coded points."""
    X = _model_matrix(design, kind)
    n = X.shape[0]
    basis = PolynomialBasis(design.k, kind)
    F = basis.expand(np.atleast_2d(points))
    try:
        inv = np.linalg.inv(X.T @ X)
    except np.linalg.LinAlgError as exc:
        raise DesignError(f"singular information matrix: {exc}") from exc
    return n * np.einsum("ij,jk,ik->i", F, inv, F)


def g_efficiency(
    design: Design,
    kind: str = "quadratic",
    candidates: Optional[np.ndarray] = None,
) -> float:
    """G-efficiency ``p / max_x SPV(x)`` over a candidate grid."""
    cand = grid_candidates(design.k, 5) if candidates is None else candidates
    spv = prediction_variance(design, cand, kind)
    p = PolynomialBasis(design.k, kind).n_terms
    worst = float(np.max(spv))
    if worst <= 0:
        return 0.0
    return p / worst


def i_criterion(
    design: Design,
    kind: str = "quadratic",
    candidates: Optional[np.ndarray] = None,
) -> float:
    """Average scaled prediction variance over the region (lower = better)."""
    cand = grid_candidates(design.k, 5) if candidates is None else candidates
    return float(np.mean(prediction_variance(design, cand, kind)))
