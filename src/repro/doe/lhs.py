"""Latin hypercube sampling.

Space-filling designs for surrogate modelling beyond the paper's
polynomial RSM workflow.  ``criterion="maximin"`` performs a simple
best-of-N restart search maximising the minimum pairwise distance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.doe.design import Design
from repro.errors import DesignError
from repro.rng import SeedLike, ensure_rng
from repro.rsm.coding import ParameterSpace


def latin_hypercube(
    k: int,
    n_runs: int,
    seed: SeedLike = None,
    criterion: str = "none",
    n_restarts: int = 20,
    space: Optional[ParameterSpace] = None,
) -> Design:
    """Sample an LHS design in coded [-1, 1] units.

    Parameters
    ----------
    criterion:
        ``"none"`` -- one random LHS; ``"maximin"`` -- keep the best of
        ``n_restarts`` by minimum pairwise distance.
    """
    if n_runs < 2:
        raise DesignError("LHS needs at least 2 runs")
    if criterion not in ("none", "maximin"):
        raise DesignError(f"unknown LHS criterion {criterion!r}")
    rng = ensure_rng(seed)

    def _one() -> np.ndarray:
        pts = np.empty((n_runs, k))
        for j in range(k):
            perm = rng.permutation(n_runs)
            pts[:, j] = (perm + rng.uniform(0.0, 1.0, n_runs)) / n_runs
        return 2.0 * pts - 1.0

    if criterion == "none":
        return Design(_one(), space=space, name=f"lhs-{n_runs}")
    best, best_score = None, -np.inf
    for _ in range(max(n_restarts, 1)):
        pts = _one()
        diffs = pts[:, None, :] - pts[None, :, :]
        dists = np.sqrt(np.sum(diffs**2, axis=2))
        np.fill_diagonal(dists, np.inf)
        score = float(np.min(dists))
        if score > best_score:
            best, best_score = pts, score
    return Design(best, space=space, name=f"lhs-maximin-{n_runs}")
