"""Central composite designs (CCD).

Cube corners + axial ("star") points + centre replicates: the workhorse
second-order design the paper lists alongside Box-Behnken and D-optimal.
Axial distance options:

- ``"face"`` -- alpha = 1 (stays in the coded box; what a bounded design
  space like Table V requires),
- ``"rotatable"`` -- alpha = (2^k)^(1/4), clipped to the box if needed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.doe.design import Design
from repro.doe.factorial import two_level_factorial
from repro.errors import DesignError
from repro.rsm.coding import ParameterSpace


def central_composite(
    k: int,
    alpha: str = "face",
    n_center: int = 1,
    space: Optional[ParameterSpace] = None,
) -> Design:
    """Build a CCD over ``k`` coded variables."""
    if k < 2:
        raise DesignError("CCD needs k >= 2")
    if n_center < 0:
        raise DesignError("n_center must be >= 0")
    if alpha == "face":
        a = 1.0
    elif alpha == "rotatable":
        a = min((2.0**k) ** 0.25, 1.0)
        # A rotatable alpha exceeds 1; a bounded coded space cannot reach
        # it, so the star points sit on the faces (standard practice for
        # constrained regions -- this makes "rotatable" equal "face" here,
        # but the option is kept for spaces coded wider than the region).
    else:
        raise DesignError(f"unknown alpha rule {alpha!r}")
    cube = two_level_factorial(k).points
    stars = []
    for i in range(k):
        for sign in (-1.0, 1.0):
            pt = np.zeros(k)
            pt[i] = sign * a
            stars.append(pt)
    center = np.zeros((n_center, k))
    pts = np.vstack([cube, np.array(stars), center])
    return Design(pts, space=space, name=f"ccd-{alpha}-k{k}")
