"""Named design generators: the DOE stage registry.

Mirrors :mod:`repro.backends`: a process-wide registry maps a name to a
generator with the uniform signature

    ``generator(space, n_runs, seed, **options) -> Design``

so a :class:`~repro.core.study.StudySpec` (or the CLI's ``explore
--design``) can select the DOE stage declaratively instead of importing
a concrete function.  The shipped names wrap the generators of this
package:

========== ==================================================
name       generator
========== ==================================================
d-optimal  :func:`repro.doe.doptimal.d_optimal` (the paper's)
lhs        :func:`repro.doe.lhs.latin_hypercube`
ccd        :func:`repro.doe.ccd.central_composite`
bbd        :func:`repro.doe.bbd.box_behnken`
factorial  :func:`repro.doe.factorial.full_factorial`
========== ==================================================

Structural designs (``ccd``, ``bbd``, ``factorial``) have a run count
fixed by their geometry; they accept ``n_runs`` for signature uniformity
and ignore it.  All shipped generators are deterministic in ``seed``
(structural ones ignore it too), which the registry conformance tests
assert for every registered name.

Third parties extend the registry with :func:`register_design`; unknown
names fail with a :class:`~repro.errors.ConfigError` listing what is
available.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.doe.bbd import box_behnken
from repro.doe.ccd import central_composite
from repro.doe.design import Design
from repro.doe.doptimal import d_optimal
from repro.doe.factorial import full_factorial
from repro.doe.lhs import latin_hypercube
from repro.errors import ConfigError
from repro.rsm.coding import ParameterSpace

#: The uniform design-generator signature.
DesignGenerator = Callable[..., Design]

_REGISTRY: Dict[str, DesignGenerator] = {}


def register_design(
    name: str, generator: DesignGenerator, overwrite: bool = False
) -> None:
    """Register a design generator under ``name``.

    ``generator(space, n_runs, seed, **options)`` must return a
    :class:`~repro.doe.design.Design` and be deterministic in ``seed``
    (same arguments, same design matrix -- studies rely on this to
    resume without re-deriving different work).  Re-registering an
    existing name requires ``overwrite=True`` so typos cannot silently
    shadow a shipped generator.
    """
    if not name:
        raise ConfigError("design name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ConfigError(
            f"design {name!r} is already registered (pass overwrite=True)"
        )
    _REGISTRY[name] = generator


def design_names() -> List[str]:
    """Registered design-generator names."""
    return sorted(_REGISTRY)


def get_design(name: str) -> DesignGenerator:
    """The generator registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(design_names())
        raise ConfigError(f"unknown design {name!r} (known: {known})") from None


def build_design(
    name: str, space: ParameterSpace, n_runs: int, seed, **options
) -> Design:
    """Resolve ``name`` and build the design in one call."""
    return get_design(name)(space, n_runs, seed, **options)


# -- shipped generators --------------------------------------------------------


def _d_optimal(
    space: ParameterSpace, n_runs: int, seed, **options
) -> Design:
    """The paper's choice: D-optimal exchange over the 3-level grid."""
    return d_optimal(
        space.k,
        n_runs,
        kind=options.pop("kind", "quadratic"),
        method=options.pop("method", "fedorov"),
        seed=seed,
        space=space,
        **options,
    )


def _lhs(space: ParameterSpace, n_runs: int, seed, **options) -> Design:
    return latin_hypercube(
        space.k,
        n_runs,
        seed=seed,
        criterion=options.pop("criterion", "maximin"),
        space=space,
        **options,
    )


def _ccd(space: ParameterSpace, n_runs: int, seed, **options) -> Design:
    # Structural: the run count follows from k and n_center.
    return central_composite(
        space.k,
        alpha=options.pop("alpha", "face"),
        n_center=int(options.pop("n_center", 1)),
        space=space,
        **options,
    )


def _bbd(space: ParameterSpace, n_runs: int, seed, **options) -> Design:
    return box_behnken(
        space.k, n_center=int(options.pop("n_center", 1)), space=space, **options
    )


def _factorial(space: ParameterSpace, n_runs: int, seed, **options) -> Design:
    return full_factorial(
        space.k, n_levels=int(options.pop("n_levels", 3)), space=space, **options
    )


register_design("d-optimal", _d_optimal)
register_design("lhs", _lhs)
register_design("ccd", _ccd)
register_design("bbd", _bbd)
register_design("factorial", _factorial)
