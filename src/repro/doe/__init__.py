"""Design of experiments (paper section II-B).

- :mod:`repro.doe.design` -- the :class:`~repro.doe.design.Design`
  container (coded points + parameter space).
- :mod:`repro.doe.factorial` -- full and fractional factorials.
- :mod:`repro.doe.ccd` -- central composite designs.
- :mod:`repro.doe.bbd` -- Box-Behnken designs.
- :mod:`repro.doe.lhs` -- Latin hypercube sampling.
- :mod:`repro.doe.candidates` -- candidate sets for optimal design.
- :mod:`repro.doe.doptimal` -- D-optimal designs by Fedorov and
  coordinate exchange (the paper's choice: 10 runs instead of 27).
- :mod:`repro.doe.criteria` -- D/A/G/I efficiency metrics.
- :mod:`repro.doe.registry` -- named design generators
  (:func:`~repro.doe.registry.register_design`) for declarative studies.
"""

from repro.doe.augment import augment_d_optimal
from repro.doe.bbd import box_behnken
from repro.doe.candidates import grid_candidates, random_candidates
from repro.doe.ccd import central_composite
from repro.doe.criteria import (
    a_efficiency,
    d_efficiency,
    g_efficiency,
    i_criterion,
)
from repro.doe.design import Design
from repro.doe.doptimal import d_optimal
from repro.doe.factorial import fractional_factorial, full_factorial, two_level_factorial
from repro.doe.lhs import latin_hypercube
from repro.doe.registry import (
    build_design,
    design_names,
    get_design,
    register_design,
)

__all__ = [
    "Design",
    "a_efficiency",
    "augment_d_optimal",
    "box_behnken",
    "build_design",
    "central_composite",
    "d_efficiency",
    "d_optimal",
    "design_names",
    "fractional_factorial",
    "full_factorial",
    "g_efficiency",
    "get_design",
    "grid_candidates",
    "i_criterion",
    "latin_hypercube",
    "random_candidates",
    "register_design",
    "two_level_factorial",
]
