"""The Design container: a set of coded runs over a parameter space."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import DesignError
from repro.rsm.basis import PolynomialBasis
from repro.rsm.coding import ParameterSpace
from repro.rsm.regression import d_criterion, log_d_criterion


class Design:
    """A matrix of coded design points, optionally bound to a space.

    Rows are runs, columns are design variables in coded [-1, 1] units.
    """

    def __init__(
        self,
        points_coded: np.ndarray,
        space: Optional[ParameterSpace] = None,
        name: str = "design",
    ):
        pts = np.atleast_2d(np.asarray(points_coded, dtype=float))
        if pts.size == 0:
            raise DesignError("design needs at least one run")
        if space is not None and pts.shape[1] != space.k:
            raise DesignError(
                f"design has {pts.shape[1]} variables, space has {space.k}"
            )
        if np.any(np.abs(pts) > 1.0 + 1e-9):
            raise DesignError("coded design points must lie in [-1, 1]")
        self.points = pts
        self.space = space
        self.name = name

    # -- structure -----------------------------------------------------------

    @property
    def n_runs(self) -> int:
        """Number of runs (rows)."""
        return self.points.shape[0]

    @property
    def k(self) -> int:
        """Number of design variables (columns)."""
        return self.points.shape[1]

    def natural_points(self) -> np.ndarray:
        """Runs in natural units (requires a bound parameter space)."""
        if self.space is None:
            raise DesignError(f"design {self.name!r} has no parameter space")
        return self.space.to_natural(self.points)

    def model_matrix(self, kind: str = "quadratic") -> np.ndarray:
        """Expanded model matrix X for a polynomial basis."""
        return PolynomialBasis(self.k, kind).expand(self.points)

    # -- quality -------------------------------------------------------------

    def d_criterion(self, kind: str = "quadratic") -> float:
        """``det(X'X)`` for the given model."""
        return d_criterion(self.model_matrix(kind))

    def log_d_criterion(self, kind: str = "quadratic") -> float:
        """``log det(X'X)``; -inf when the design is singular."""
        return log_d_criterion(self.model_matrix(kind))

    def supports_model(self, kind: str = "quadratic") -> bool:
        """Whether the design can identify every coefficient of the model."""
        X = self.model_matrix(kind)
        if X.shape[0] < X.shape[1]:
            return False
        return np.linalg.matrix_rank(X) == X.shape[1]

    # -- manipulation -----------------------------------------------------------

    def append(self, other: "Design") -> "Design":
        """Concatenate two designs over the same variables."""
        if other.k != self.k:
            raise DesignError("cannot append designs with different k")
        return Design(
            np.vstack([self.points, other.points]),
            space=self.space or other.space,
            name=f"{self.name}+{other.name}",
        )

    def unique(self, decimals: int = 9) -> "Design":
        """Drop duplicate runs (rounded comparison)."""
        _, idx = np.unique(
            np.round(self.points, decimals), axis=0, return_index=True
        )
        return Design(self.points[np.sort(idx)], space=self.space, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Design({self.name!r}, runs={self.n_runs}, k={self.k})"
