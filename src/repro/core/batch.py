"""Parallel batch execution of scenarios.

:class:`BatchRunner` is the one dispatch point every many-simulation
driver (DOE evaluation, Monte Carlo, robustness grids, Fig. 4 sweeps,
CLI batches) funnels through.  It adds three things on top of a plain
loop over :func:`repro.backends.run`:

- **Deterministic seeding** -- scenarios submitted with ``seed=None``
  get a per-scenario seed derived from the runner's base seed and the
  scenario's *position in the batch* (:func:`repro.rng.derive_seed`), so
  results are identical whether the batch runs serially or on N workers.
- **Fan-out** -- ``jobs > 1`` dispatches over ``concurrent.futures``
  (processes by default, because the simulators are pure Python and
  GIL-bound; threads are available for cheap backends or shared-memory
  experiments).
- **An LRU result cache** keyed on the scenario content hash
  (:meth:`~repro.scenario.Scenario.cache_key`), so repeated scenarios --
  verification re-runs, overlapping sweeps, optimiser revisits -- cost
  nothing.  Duplicates *within* one batch are also simulated only once.
- **An optional persistent second tier** -- attach a
  :class:`~repro.store.ResultStore` and lookups fall through memory LRU
  -> disk store -> simulate, with every fresh result written through to
  disk.  Results then survive the process and are shared with every
  other runner (or machine) pointed at the same store file.
- **Batch-capable backend dispatch** -- scenarios whose backend
  implements ``run_batch`` (the ``vectorized`` backend) are handed over
  in one call per backend instead of being fanned out one scenario at a
  time, so a 256-scenario batch is a single lockstep array integration.
  With ``jobs=N`` the two compose: the group shards into N contiguous
  sub-batches and each worker advances its sub-batch through one
  ``run_batch`` call, preserving byte-identical results for any worker
  count.  The cache tiers and ``store_hits`` accounting sit *above*
  this dispatch and behave identically for every backend.

Results come back in submission order regardless of completion order.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.backends import (
    dispatch_batchable,
    get_backend,
    run,
    shard_contiguous,
)
from repro.errors import ConfigError
from repro.obs.metrics import metrics
from repro.obs.state import STATE as _OBS
from repro.obs.trace import span
from repro.rng import derive_seed
from repro.scenario import Scenario
from repro.system.result import SystemResult

if TYPE_CHECKING:  # pragma: no cover - import would be circular at runtime
    from repro.store import ResultStore

#: Accepted ``executor`` values.
_EXECUTORS = ("process", "thread")

#: Batch cache-tier telemetry: how lookups resolved and what each tier
#: cost.  ``tier`` is ``memory`` / ``store`` (hits per cache tier) or
#: ``simulate`` (the miss path); the timer covers store lookups and the
#: simulate phase (memory hits are not worth a clock read).
_TIER_TOTAL = metrics().counter(
    "repro_batch_tier_total",
    "Batch scenario lookups resolved per cache tier",
    ("tier",),
)
_TIER_SECONDS = metrics().histogram(
    "repro_batch_tier_seconds",
    "Wall time spent per batch cache tier",
    ("tier",),
)


def _run_scenario(scenario: Scenario) -> SystemResult:
    """Module-level worker so process pools can pickle it."""
    return run(scenario)


def _run_scenario_metered(scenario: Scenario):
    """Process-pool worker that ships its metrics delta home.

    The worker's registry is reset before the run and snapshotted after,
    so each returned snapshot holds exactly this scenario's telemetry;
    the coordinating runner merges them, which is how counters collected
    inside process workers survive the pool.
    """
    registry = metrics()
    registry.reset()
    result = run(scenario)
    return result, registry.snapshot()


def _run_subbatch(payload) -> List[SystemResult]:
    """Module-level worker: one ``run_batch`` call over one sub-batch.

    ``payload`` is ``(backend_name, scenarios)``; keeping the worker at
    module level (and the payload plain data) is what lets process
    pools pickle it.
    """
    name, scenarios = payload
    return get_backend(name).run_batch(scenarios)


def _run_subbatch_metered(payload):
    """Sub-batch worker that ships its metrics delta home (see
    :func:`_run_scenario_metered`)."""
    registry = metrics()
    registry.reset()
    results = _run_subbatch(payload)
    return results, registry.snapshot()


class BatchRunner:
    """Fan a list of scenarios out over workers, deterministically.

    Parameters
    ----------
    jobs:
        Worker count; ``1`` runs in-process (no executor, no pickling).
    seed:
        Base seed for deriving per-scenario seeds when a scenario is
        submitted with ``seed=None``.
    cache_size:
        Maximum number of results kept in the LRU cache (0 disables it).
    executor:
        ``"process"`` (default; real parallelism for the pure-Python
        simulators) or ``"thread"``.  Process workers re-import the
        backend registry, so custom backends registered at runtime are
        only visible to them where workers are forked (see
        :func:`repro.backends.register_backend`); use ``"thread"`` for
        runtime-registered backends on spawn-based platforms.
    store:
        Optional :class:`~repro.store.ResultStore`: the persistent
        second cache tier.  Misses in the memory LRU are looked up on
        disk before simulating, and fresh results are written through,
        so batches dedupe across processes and across runs of the
        program.  Store writes happen in the coordinating process (the
        workers stay pure), which keeps process fan-out safe for any
        executor.
    backend:
        Optional backend-name override.  When set, every submitted
        scenario is rewritten to run on this backend *before* seeding,
        caching and store lookups, so cache keys and store provenance
        name the backend that actually produced each result
        (``BatchRunner(backend="vectorized")`` turns any scenario list
        into one lockstep array integration).  Unknown names fail at
        construction with a :class:`~repro.errors.ConfigError` listing
        the registered alternatives.
    """

    def __init__(
        self,
        jobs: int = 1,
        seed: int = 0,
        cache_size: int = 256,
        executor: str = "process",
        store: Optional["ResultStore"] = None,
        backend: Optional[str] = None,
    ):
        if jobs < 1:
            raise ConfigError("jobs must be >= 1")
        if cache_size < 0:
            raise ConfigError("cache_size must be >= 0")
        if executor not in _EXECUTORS:
            raise ConfigError(
                f"unknown executor {executor!r} (known: {', '.join(_EXECUTORS)})"
            )
        if backend is not None:
            get_backend(backend)  # fail fast, listing the alternatives
        self.jobs = int(jobs)
        self.seed = int(seed)
        self.cache_size = int(cache_size)
        self.executor = executor
        self.store = store
        self.backend = backend
        self._cache: "OrderedDict[str, SystemResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    # -- seeding ---------------------------------------------------------------

    def resolve_seeds(self, scenarios: Sequence[Scenario]) -> List[Scenario]:
        """Materialise ``seed=None`` entries into deterministic seeds.

        The derived seed depends only on the runner's base seed and the
        scenario's index, so a batch is reproducible for any ``jobs``.
        """
        from dataclasses import replace

        resolved = []
        for index, scenario in enumerate(scenarios):
            if self.backend is not None and scenario.backend != self.backend:
                scenario = replace(scenario, backend=self.backend)
            if scenario.seed is None:
                scenario = scenario.with_seed(derive_seed(self.seed, index))
            resolved.append(scenario)
        return resolved

    # -- execution ---------------------------------------------------------------

    def run(self, scenarios: Sequence[Scenario]) -> List[SystemResult]:
        """Execute every scenario; results align with the input order."""
        resolved = self.resolve_seeds(scenarios)
        results: List[Optional[SystemResult]] = [None] * len(resolved)

        with span("batch.run", n=len(resolved)) as batch_span:
            # Serve memory-tier hits, then disk-tier hits, and collect
            # the unique missing work.
            memory_hits = 0
            store_hits = 0
            store_seconds = 0.0
            pending: "Dict[str, List[int]]" = {}
            for i, scenario in enumerate(resolved):
                key = scenario.cache_key()
                cached = self._cache_get(key)
                if cached is not None:
                    memory_hits += 1
                elif self.store is not None:
                    t0 = time.perf_counter() if _OBS.metrics_on else 0.0
                    stored = self.store.get(key)
                    if _OBS.metrics_on:
                        store_seconds += time.perf_counter() - t0
                    if stored is not None:
                        self.store_hits += 1
                        store_hits += 1
                        self._cache_put(key, stored)
                        cached = stored
                if cached is not None:
                    results[i] = cached
                else:
                    pending.setdefault(key, []).append(i)
            if _OBS.metrics_on:
                if memory_hits:
                    _TIER_TOTAL.inc(memory_hits, tier="memory")
                if store_hits:
                    _TIER_TOTAL.inc(store_hits, tier="store")
                if self.store is not None:
                    _TIER_SECONDS.observe(store_seconds, tier="store")

            if pending:
                unique = [resolved[indices[0]] for indices in pending.values()]
                started = time.perf_counter()
                with span("batch.simulate", n=len(unique)):
                    fresh = self._execute(unique)
                # Attribute the batch's wall time evenly across its
                # members: per-scenario timing is meaningless under a
                # shared pool.
                elapsed = time.perf_counter() - started
                per_scenario = elapsed / len(unique)
                if _OBS.metrics_on:
                    _TIER_TOTAL.inc(len(unique), tier="simulate")
                    _TIER_SECONDS.observe(elapsed, tier="simulate")
                for (key, indices), scenario, result in zip(
                    pending.items(), unique, fresh
                ):
                    self._cache_put(key, result)
                    if self.store is not None:
                        self.store.put(scenario, result, wall_time_s=per_scenario)
                    for i in indices:
                        results[i] = result
            batch_span.annotate(
                memory_hits=memory_hits,
                store_hits=store_hits,
                simulated=len(pending),
            )
        return results  # type: ignore[return-value]

    def run_one(self, scenario: Scenario) -> SystemResult:
        """Convenience wrapper: a one-element batch."""
        return self.run([scenario])[0]

    def run_family(
        self, family, n: int = 1, seed: Optional[int] = None
    ) -> List[SystemResult]:
        """Expand a :class:`~repro.system.stochastic.ScenarioFamily` and
        run the expansion as one batch.

        ``seed`` defaults to the runner's base seed; results align with
        ``family.expand(n, seed)``, which callers can re-evaluate to
        recover the scenario for each result (expansion is pure).
        """
        expansion_seed = self.seed if seed is None else seed
        return self.run(family.expand(n=n, seed=expansion_seed))

    def _execute(self, scenarios: List[Scenario]) -> List[SystemResult]:
        self.misses += len(scenarios)
        # Batch-capable backends take their whole group in one
        # ``run_batch`` call with ``jobs=1``; with ``jobs=N`` the group
        # is sharded into N contiguous sub-batches, one ``run_batch``
        # call per worker (results are per-scenario deterministic, so
        # the reassembled batch is byte-identical for any worker
        # count).  The leftovers keep the per-scenario executor path.
        executor = self._run_group_sharded if self.jobs > 1 else None
        results, serial = dispatch_batchable(scenarios, batch_executor=executor)
        if serial:
            subset = [scenarios[i] for i in serial]
            if self.jobs == 1 or len(subset) == 1:
                fresh = [_run_scenario(s) for s in subset]
            elif self.executor == "process" and _OBS.metrics_on:
                # Each worker item ships its metrics delta home as a
                # picklable snapshot; merging here is what keeps the
                # registry whole across the process pool.
                with self._make_executor(min(self.jobs, len(subset))) as pool:
                    pairs = list(pool.map(_run_scenario_metered, subset))
                registry = metrics()
                fresh = []
                for result, snapshot in pairs:
                    fresh.append(result)
                    registry.merge(snapshot)
            else:
                with self._make_executor(min(self.jobs, len(subset))) as pool:
                    fresh = list(pool.map(_run_scenario, subset))
            for i, result in zip(serial, fresh):
                results[i] = result
        return results  # type: ignore[return-value]

    def _run_group_sharded(
        self, name: str, batch: List[Scenario]
    ) -> List[SystemResult]:
        """Fan one batch-capable backend group out over the worker pool.

        The group splits into ``min(jobs, len(batch))`` contiguous
        sub-batches (:func:`repro.backends.shard_contiguous`); each
        worker advances its sub-batch through a single ``run_batch``
        call, and the sub-results concatenate back in submission order.
        """
        if len(batch) == 1:
            return get_backend(name).run_batch(batch)
        shards = shard_contiguous(batch, self.jobs)
        payloads = [(name, shard) for shard in shards]
        if self.executor == "process" and _OBS.metrics_on:
            with self._make_executor(len(shards)) as pool:
                pairs = list(pool.map(_run_subbatch_metered, payloads))
            registry = metrics()
            parts = []
            for results, snapshot in pairs:
                parts.append(results)
                registry.merge(snapshot)
        else:
            with self._make_executor(len(shards)) as pool:
                parts = list(pool.map(_run_subbatch, payloads))
        out: List[SystemResult] = []
        for part in parts:
            out.extend(part)
        return out

    def _make_executor(self, workers: int) -> Executor:
        if self.executor == "thread":
            return ThreadPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(max_workers=workers)

    # -- cache -------------------------------------------------------------------

    def _cache_get(self, key: str) -> Optional[SystemResult]:
        if key not in self._cache:
            return None
        self._cache.move_to_end(key)
        self.hits += 1
        return self._cache[key]

    def _cache_put(self, key: str, result: SystemResult) -> None:
        if self.cache_size == 0:
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def cache_len(self) -> int:
        """Number of cached results."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all *memory*-cached results and reset the counters.

        The persistent store (when attached) is deliberately left alone:
        it is shared state owned by the caller, not this runner.
        """
        self._cache.clear()
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
