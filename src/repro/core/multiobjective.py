"""Multi-objective extension of the paper's exploration.

The single-objective flow maximises transmissions per hour; the optimum it
finds deliberately drains every harvested joule.  A deployment usually
also cares about the *energy reserve* left for vibration droughts.  This
module exposes that trade-off:

- :class:`MultiObjectiveSimulation` -- evaluates a coded configuration to
  ``(transmissions, final stored energy in joules)``;
- :func:`explore_tradeoff` -- runs NSGA-II over the Table V space on the
  true simulator and returns the Pareto front of configurations.

Because each evaluation is a full hour-long simulation, defaults keep the
budget modest (~600 simulations, a few tens of seconds); evaluations are
cached so the elitist survivors never re-simulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.objective import SimulationObjective
from repro.optimize.pareto import ParetoResult, nsga2
from repro.rsm.coding import ParameterSpace
from repro.system.config import SystemConfig, paper_parameter_space


class MultiObjectiveSimulation:
    """Coded point -> (transmissions, final stored energy), cached."""

    def __init__(self, objective: Optional[SimulationObjective] = None, seed: int = 0):
        self.objective = objective or SimulationObjective(seed=seed)
        self._cache: Dict[Tuple[float, ...], Tuple[float, float]] = {}

    def __call__(self, coded: np.ndarray) -> Tuple[float, float]:
        key = tuple(np.round(np.asarray(coded, dtype=float), 9))
        if key not in self._cache:
            config = self.objective.config_from_coded(np.array(key))
            result = self.objective.simulate(config, record_traces=False)
            self._cache[key] = (
                float(result.transmissions),
                float(result.breakdown.final_stored),
            )
        return self._cache[key]

    @property
    def n_simulations(self) -> int:
        """Distinct configurations simulated so far."""
        return len(self._cache)


@dataclass
class TradeoffEntry:
    """One Pareto-front configuration."""

    config: SystemConfig
    transmissions: float
    final_energy: float


def explore_tradeoff(
    seed: int = 0,
    population_size: int = 24,
    n_generations: int = 12,
    space: Optional[ParameterSpace] = None,
    simulation: Optional[MultiObjectiveSimulation] = None,
) -> "tuple[list[TradeoffEntry], ParetoResult]":
    """NSGA-II over (transmissions, final stored energy), both maximised.

    Returns the front as config entries (sorted by transmissions) plus the
    raw :class:`~repro.optimize.pareto.ParetoResult`.
    """
    space = space or paper_parameter_space()
    sim = simulation or MultiObjectiveSimulation(seed=seed)
    result = nsga2(
        objectives=sim,
        bounds=space.bounds_coded(),
        population_size=population_size,
        n_generations=n_generations,
        seed=seed,
    )
    ordered = result.sorted_by(0)
    entries = [
        TradeoffEntry(
            config=sim.objective.config_from_coded(pt),
            transmissions=float(obj[0]),
            final_energy=float(obj[1]),
        )
        for pt, obj in zip(ordered.points, ordered.objectives)
    ]
    return entries, ordered
