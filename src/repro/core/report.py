"""Report generation: the paper's tables and figure series.

Plain-text/CSV renderers only -- no plotting dependencies.  Benches print
these next to the paper's published values so EXPERIMENTS.md can record
paper-vs-measured for every artefact.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.explorer import ExplorationOutcome
from repro.core.objective import SimulationObjective
from repro.rsm.model import ResponseSurface


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def table_vi_rows(outcome: ExplorationOutcome) -> List[List[str]]:
    """Rows in the exact shape of the paper's Table VI."""
    rows = [
        [
            "clock (Hz)",
            f"{outcome.original_config.clock_hz:g}",
            *[f"{e.config.clock_hz:g}" for e in outcome.optima],
        ],
        [
            "watchdog (s)",
            f"{outcome.original_config.watchdog_s:g}",
            *[f"{e.config.watchdog_s:g}" for e in outcome.optima],
        ],
        [
            "tx interval (s)",
            f"{outcome.original_config.tx_interval_s:g}",
            *[f"{e.config.tx_interval_s:g}" for e in outcome.optima],
        ],
        [
            outcome.metric,
            outcome.format_value(outcome.original_transmissions),
            *[outcome.format_value(e.simulated_value) for e in outcome.optima],
        ],
    ]
    return rows


def render_table_vi(outcome: ExplorationOutcome) -> str:
    """ASCII rendition of Table VI."""
    headers = ["parameter", "original"] + [e.method for e in outcome.optima]
    return format_table(headers, table_vi_rows(outcome), title="Table VI (reproduced)")


def design_space_sweep(
    model: ResponseSurface,
    objective: Optional[SimulationObjective] = None,
    n_points: int = 21,
    center: Optional[np.ndarray] = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Fig. 4 data: 1-D sweeps of each coded variable, others held fixed.

    Returns per-parameter dictionaries with the coded axis, the RSM
    prediction and (when an objective is given) the true simulated
    response on a coarser axis.  All simulated points -- every parameter's
    sweep -- are submitted as *one* design matrix, so the objective's
    batch runner can fan the whole figure out over its workers at once.
    """
    k = model.basis.k
    base = np.zeros(k) if center is None else np.asarray(center, dtype=float)
    axis = np.linspace(-1.0, 1.0, n_points)
    sweeps: Dict[str, Dict[str, np.ndarray]] = {}
    names = (
        [p.name for p in model.space.parameters]
        if model.space is not None
        else [f"x{i + 1}" for i in range(k)]
    )
    coarse = np.linspace(-1.0, 1.0, 7)
    for i, name in enumerate(names):
        pts = np.tile(base, (n_points, 1))
        pts[:, i] = axis
        entry: Dict[str, np.ndarray] = {
            "coded": axis,
            "rsm": np.asarray(model.predict_coded(pts), dtype=float),
        }
        if model.space is not None:
            entry["natural"] = model.space.to_natural(pts)[:, i]
        sweeps[name] = entry
    if objective is not None:
        blocks = []
        for i in range(len(names)):
            block = np.tile(base, (len(coarse), 1))
            block[:, i] = coarse
            blocks.append(block)
        sim_values = objective.evaluate_design(np.vstack(blocks))
        for i, name in enumerate(names):
            sweeps[name]["sim_coded"] = coarse
            sweeps[name]["sim"] = sim_values[i * len(coarse) : (i + 1) * len(coarse)]
    return sweeps


def series_to_csv(columns: Dict[str, np.ndarray]) -> str:
    """Render aligned 1-D arrays as CSV (figure data export)."""
    names = list(columns)
    length = len(next(iter(columns.values())))
    lines = [",".join(names)]
    for i in range(length):
        lines.append(",".join(f"{float(columns[n][i]):.9g}" for n in names))
    return "\n".join(lines)
