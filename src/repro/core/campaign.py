"""Persistence of exploration outcomes.

Serialises the quantitative content of an
:class:`~repro.core.explorer.ExplorationOutcome` to JSON (design points,
responses, fitted coefficients, optima) so campaigns can be compared
across code versions.  Models are reconstructed on load; simulator state
is not stored (re-run to regenerate traces).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.explorer import ExplorationOutcome, OptimaEntry
from repro.doe.design import Design
from repro.errors import DesignError
from repro.optimize.result import OptimizationResult
from repro.rsm.basis import PolynomialBasis
from repro.rsm.diagnostics import FitDiagnostics
from repro.rsm.model import ResponseSurface
from repro.system.config import SystemConfig, paper_parameter_space


#: Version stamp written into every campaign JSON payload.  Bump when the
#: layout changes incompatibly; ``load_outcome`` refuses unknown versions.
CAMPAIGN_SCHEMA = 1


def save_outcome(outcome: ExplorationOutcome, path: Union[str, Path]) -> None:
    """Write an outcome's quantitative content to a JSON file."""
    payload = {
        "schema": CAMPAIGN_SCHEMA,
        "design": {
            "name": outcome.design.name,
            "points": outcome.design.points.tolist(),
        },
        "responses": np.asarray(outcome.responses, dtype=float).tolist(),
        "model": {
            "kind": outcome.model.basis.kind,
            "coefficients": outcome.model.coefficients.tolist(),
        },
        "diagnostics": {
            "r2": outcome.fit_diagnostics.r2,
            "adj_r2": outcome.fit_diagnostics.adj_r2,
            "press_rmse": outcome.fit_diagnostics.press_rmse,
        },
        "original": {
            "config": outcome.original_config.as_vector(),
            "transmissions": outcome.original_transmissions,
        },
        "metric": outcome.metric,
        "optima": [
            {
                "method": e.method,
                "coded": e.coded.tolist(),
                "config": e.config.as_vector(),
                "rsm_value": e.rsm_value,
                "simulated_value": e.simulated_value,
            }
            for e in outcome.optima
        ],
        "n_simulations": outcome.n_simulations,
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_outcome(path: Union[str, Path]) -> ExplorationOutcome:
    """Rebuild an outcome from :func:`save_outcome` output.

    The returned object carries reconstructed design/model objects and the
    saved statistics; optimizer histories and simulator traces are not
    persisted (their ``optimizer_result`` fields hold summary shells).

    Files written before the ``schema`` field existed load as schema 1
    (their layout is identical); unknown versions raise
    :class:`~repro.errors.DesignError`.
    """
    raw = json.loads(Path(path).read_text())
    schema = raw.get("schema", CAMPAIGN_SCHEMA)
    if schema != CAMPAIGN_SCHEMA:
        raise DesignError(
            f"unsupported campaign schema {schema!r} "
            f"(this library reads schema {CAMPAIGN_SCHEMA})"
        )
    space = paper_parameter_space()
    points = np.asarray(raw["design"]["points"], dtype=float)
    if points.ndim != 2 or points.shape[1] != space.k:
        raise DesignError(f"saved design has bad shape {points.shape}")
    design = Design(points, space=space, name=raw["design"]["name"])
    responses = np.asarray(raw["responses"], dtype=float)
    basis = PolynomialBasis(space.k, raw["model"]["kind"])
    model = ResponseSurface(
        basis, np.asarray(raw["model"]["coefficients"], dtype=float), space=space
    )
    diag = FitDiagnostics(
        n=design.n_runs,
        p=basis.n_terms,
        r2=raw["diagnostics"]["r2"],
        adj_r2=raw["diagnostics"]["adj_r2"],
        rmse=float("nan"),
        press=float("nan"),
        press_rmse=raw["diagnostics"]["press_rmse"],
        max_leverage=float("nan"),
        vif=None,
    )
    optima = []
    for e in raw["optima"]:
        coded = np.asarray(e["coded"], dtype=float)
        shell = OptimizationResult(
            x=coded,
            value=e["rsm_value"],
            n_evaluations=0,
            method=e["method"],
        )
        optima.append(
            OptimaEntry(
                method=e["method"],
                coded=coded,
                config=SystemConfig.from_vector(e["config"]),
                rsm_value=e["rsm_value"],
                simulated_value=e["simulated_value"],
                optimizer_result=shell,
            )
        )
    return ExplorationOutcome(
        space=space,
        design=design,
        responses=responses,
        model=model,
        fit_diagnostics=diag,
        original_config=SystemConfig.from_vector(raw["original"]["config"]),
        original_transmissions=raw["original"]["transmissions"],
        optima=optima,
        n_simulations=raw.get("n_simulations", 0),
        metric=raw.get("metric", "transmissions"),
    )
