"""The design-space exploration driver (paper section V).

:class:`DesignSpaceExplorer` chains DOE -> simulate -> fit -> optimise ->
verify.  Optimisers maximise the cheap fitted surface (as in the paper);
the winning points are then *verified* with full simulations, which is
what Table VI reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.doe.design import Design
from repro.doe.doptimal import d_optimal
from repro.errors import DesignError
from repro.optimize.annealing import simulated_annealing
from repro.optimize.genetic import genetic_algorithm
from repro.optimize.problem import Problem
from repro.optimize.result import OptimizationResult
from repro.rng import derive_seed
from repro.rsm.coding import ParameterSpace
from repro.rsm.diagnostics import FitDiagnostics, diagnostics
from repro.rsm.model import ResponseSurface, fit_response_surface
from repro.core.objective import SimulationObjective
from repro.system.config import SystemConfig


@dataclass
class OptimaEntry:
    """One optimiser's outcome: RSM prediction and simulation truth."""

    method: str
    coded: np.ndarray
    config: SystemConfig
    rsm_value: float
    simulated_value: float
    optimizer_result: OptimizationResult


@dataclass
class ExplorationOutcome:
    """Everything the paper's evaluation section reports."""

    space: ParameterSpace
    design: Design
    responses: np.ndarray
    model: ResponseSurface
    fit_diagnostics: FitDiagnostics
    original_config: SystemConfig
    original_transmissions: float
    optima: List[OptimaEntry] = field(default_factory=list)
    n_simulations: int = 0

    def best(self) -> OptimaEntry:
        """The optimiser entry with the highest *simulated* value."""
        if not self.optima:
            raise DesignError("no optima recorded")
        return max(self.optima, key=lambda e: e.simulated_value)

    def improvement_factor(self) -> float:
        """Best simulated transmissions relative to the original design."""
        if self.original_transmissions <= 0:
            return float("inf")
        return self.best().simulated_value / self.original_transmissions

    def summary(self) -> str:
        """Multi-line report in the shape of the paper's Table VI."""
        lines = [
            f"design: {self.design.name} ({self.design.n_runs} runs), "
            f"R^2 = {self.fit_diagnostics.r2:.3f}",
            f"original  {self.original_config.describe()}: "
            f"{self.original_transmissions:.0f} transmissions",
        ]
        for entry in self.optima:
            lines.append(
                f"{entry.method:<20s} {entry.config.describe()}: "
                f"{entry.simulated_value:.0f} transmissions "
                f"(RSM predicted {entry.rsm_value:.0f})"
            )
        lines.append(f"improvement factor: {self.improvement_factor():.2f}x")
        return "\n".join(lines)


class DesignSpaceExplorer:
    """DOE -> simulate -> RSM -> optimise -> verify."""

    def __init__(
        self,
        space: ParameterSpace,
        objective: SimulationObjective,
        original_config: Optional[SystemConfig] = None,
    ):
        self.space = space
        self.objective = objective
        from repro.system.config import ORIGINAL_DESIGN

        self.original_config = original_config or ORIGINAL_DESIGN

    # -- pipeline stages --------------------------------------------------------

    def build_design(
        self, n_runs: int = 10, method: str = "fedorov", seed: int = 0
    ) -> Design:
        """Stage 1: the D-optimal design (paper: 10 runs, 3-level grid)."""
        return d_optimal(
            self.space.k,
            n_runs,
            kind="quadratic",
            method=method,
            seed=derive_seed(seed, 11),
            space=self.space,
        )

    def run_design(self, design: Design) -> np.ndarray:
        """Stage 2: simulate every design point."""
        return self.objective.evaluate_design(design.points)

    def fit_model(self, design: Design, responses: np.ndarray) -> ResponseSurface:
        """Stage 3: fit the quadratic response surface (eq. 9)."""
        return fit_response_surface(
            design.points, responses, kind="quadratic", space=self.space
        )

    def optimise_model(
        self,
        model: ResponseSurface,
        seed: int = 0,
        optimizers: Optional[Dict[str, Callable[..., OptimizationResult]]] = None,
    ) -> List[OptimaEntry]:
        """Stage 4+5: maximise the surface, then verify by simulation."""
        problem = Problem(
            objective=lambda x: float(model.predict_coded(x)),
            bounds=self.space.bounds_coded(),
            maximize=True,
            name="rsm-surface",
        )
        methods = optimizers or {
            "simulated-annealing": simulated_annealing,
            "genetic-algorithm": genetic_algorithm,
        }
        entries: List[OptimaEntry] = []
        for i, (name, method) in enumerate(methods.items()):
            result = method(problem, seed=derive_seed(seed, 100 + i))
            coded = self.space.clip_coded(result.x)
            config = self.objective.config_from_coded(coded)
            simulated = self.objective(coded)
            entries.append(
                OptimaEntry(
                    method=name,
                    coded=np.asarray(coded, dtype=float),
                    config=config,
                    rsm_value=float(result.value),
                    simulated_value=float(simulated),
                    optimizer_result=result,
                )
            )
        return entries

    # -- one-call flow -----------------------------------------------------------

    def run(
        self,
        n_runs: int = 10,
        seed: int = 0,
        doe_method: str = "fedorov",
        design: Optional[Design] = None,
        optimizers: Optional[Dict[str, Callable[..., OptimizationResult]]] = None,
    ) -> ExplorationOutcome:
        """Execute the full paper workflow and return every artefact."""
        design = design or self.build_design(n_runs, method=doe_method, seed=seed)
        responses = self.run_design(design)
        model = self.fit_model(design, responses)
        X = design.model_matrix("quadratic")
        diag = diagnostics(X, responses, model.fit)
        original_coded = self.space.to_coded(
            np.array(self.original_config.as_vector())
        )
        original_value = self.objective(original_coded)
        optima = self.optimise_model(model, seed=seed, optimizers=optimizers)
        return ExplorationOutcome(
            space=self.space,
            design=design,
            responses=responses,
            model=model,
            fit_diagnostics=diag,
            original_config=self.original_config,
            original_transmissions=float(original_value),
            optima=optima,
            n_simulations=self.objective.n_simulations,
        )
