"""The design-space exploration driver (paper section V).

:class:`DesignSpaceExplorer` chains DOE -> simulate -> fit -> optimise ->
verify.  Optimisers maximise the cheap fitted surface (as in the paper);
the winning points are then *verified* with full simulations, which is
what Table VI reports.

Every stage is resolved through a process-wide registry -- designs from
:mod:`repro.doe.registry`, surrogates from :mod:`repro.rsm.registry`,
optimisers from :mod:`repro.optimize.registry` -- so the pipeline is
assembled from names, exactly like simulation backends.  The serialisable
face of that idea is :class:`~repro.core.study.StudySpec`; this class
remains the imperative driver underneath it (and keeps its original
callable-based signatures working).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.doe.design import Design
from repro.doe.registry import get_design
from repro.errors import DesignError
from repro.optimize.registry import get_optimizer
from repro.optimize.problem import Problem
from repro.optimize.result import OptimizationResult
from repro.rng import derive_seed
from repro.rsm.coding import ParameterSpace
from repro.rsm.diagnostics import FitDiagnostics, diagnostics
from repro.rsm.model import ResponseSurface
from repro.rsm.registry import get_surrogate
from repro.core.objective import SimulationObjective
from repro.system.config import SystemConfig

#: The paper's two surface maximisers, in its order.
DEFAULT_OPTIMIZERS: Tuple[str, ...] = ("simulated-annealing", "genetic-algorithm")


@dataclass
class OptimaEntry:
    """One optimiser's outcome: RSM prediction and simulation truth."""

    method: str
    coded: np.ndarray
    config: SystemConfig
    rsm_value: float
    simulated_value: float
    optimizer_result: OptimizationResult


@dataclass
class ExplorationOutcome:
    """Everything the paper's evaluation section reports.

    ``metric`` names the response every value in here measures
    (:data:`repro.core.objective.METRICS`); ``original_transmissions``
    keeps its historical name but holds that metric's value for the
    original design.
    """

    space: ParameterSpace
    design: Design
    responses: np.ndarray
    model: ResponseSurface
    fit_diagnostics: FitDiagnostics
    original_config: SystemConfig
    original_transmissions: float
    optima: List[OptimaEntry] = field(default_factory=list)
    n_simulations: int = 0
    metric: str = "transmissions"

    def format_value(self, value: float) -> str:
        """One metric value as text (counts as integers, else 4 s.f.)."""
        if self.metric == "transmissions":
            return f"{value:.0f}"
        return f"{value:.4g}"

    def best(self) -> OptimaEntry:
        """The optimiser entry with the highest *simulated* value."""
        if not self.optima:
            raise DesignError("no optima recorded")
        return max(self.optima, key=lambda e: e.simulated_value)

    def improvement_factor(self) -> float:
        """Best simulated transmissions relative to the original design.

        ``inf`` when the original design produced no transmissions at
        all (any improvement over zero is unbounded); :meth:`summary`
        renders that case as "n/a" instead of a meaningless ``infx``.
        """
        if self.original_transmissions <= 0:
            return float("inf")
        return self.best().simulated_value / self.original_transmissions

    def summary(self) -> str:
        """Multi-line report in the shape of the paper's Table VI."""
        lines = [
            f"design: {self.design.name} ({self.design.n_runs} runs), "
            f"R^2 = {self.fit_diagnostics.r2:.3f}",
            f"original  {self.original_config.describe()}: "
            f"{self.format_value(self.original_transmissions)} {self.metric}",
        ]
        for entry in self.optima:
            lines.append(
                f"{entry.method:<20s} {entry.config.describe()}: "
                f"{self.format_value(entry.simulated_value)} {self.metric} "
                f"(RSM predicted {self.format_value(entry.rsm_value)})"
            )
        if self.original_transmissions <= 0:
            lines.append(
                f"improvement factor: n/a "
                f"(original design produced 0 {self.metric})"
            )
        else:
            lines.append(f"improvement factor: {self.improvement_factor():.2f}x")
        return "\n".join(lines)


#: ``optimizers`` arguments accepted by the explorer: named registry
#: entries (new) or a mapping of label -> callable (the original API).
OptimizerArg = Union[
    Sequence[str], Mapping[str, Callable[..., OptimizationResult]], None
]


class DesignSpaceExplorer:
    """DOE -> simulate -> RSM -> optimise -> verify."""

    def __init__(
        self,
        space: ParameterSpace,
        objective: SimulationObjective,
        original_config: Optional[SystemConfig] = None,
    ):
        self.space = space
        self.objective = objective
        from repro.system.config import ORIGINAL_DESIGN

        self.original_config = original_config or ORIGINAL_DESIGN

    # -- pipeline stages --------------------------------------------------------

    def build_design(
        self,
        n_runs: int = 10,
        method: str = "fedorov",
        seed: int = 0,
        design: str = "d-optimal",
        options: Optional[Mapping[str, object]] = None,
    ) -> Design:
        """Stage 1: a named design (paper: 10-run D-optimal, 3-level grid).

        ``design`` names a :mod:`repro.doe.registry` generator;
        ``method`` is kept for backward compatibility and feeds the
        D-optimal exchange algorithm choice.
        """
        opts = dict(options or {})
        if design == "d-optimal":
            opts.setdefault("method", method)
        return get_design(design)(
            self.space, n_runs, derive_seed(seed, 11), **opts
        )

    def run_design(self, design: Design) -> np.ndarray:
        """Stage 2: simulate every design point."""
        return self.objective.evaluate_design(design.points)

    def fit_model(
        self,
        design: Design,
        responses: np.ndarray,
        surrogate: str = "quadratic",
        options: Optional[Mapping[str, object]] = None,
    ) -> ResponseSurface:
        """Stage 3: fit the named surrogate (default: eq. 9 quadratic)."""
        return get_surrogate(surrogate)(
            design.points, responses, space=self.space, **dict(options or {})
        )

    def optimise_model(
        self,
        model: ResponseSurface,
        seed: int = 0,
        optimizers: OptimizerArg = None,
        optimizer_options: Optional[Mapping[str, Mapping[str, object]]] = None,
    ) -> List[OptimaEntry]:
        """Stage 4+5: maximise the surface, then verify by simulation.

        ``optimizers`` is a sequence of :mod:`repro.optimize.registry`
        names (default: the paper's SA + GA) or, as before, a mapping of
        label -> optimiser callable.  ``optimizer_options`` supplies
        per-name keyword arguments for the named form.
        """
        problem = Problem(
            objective=lambda x: float(model.predict_coded(x)),
            bounds=self.space.bounds_coded(),
            maximize=True,
            name="rsm-surface",
        )
        entries: List[OptimaEntry] = []
        options = dict(optimizer_options or {})
        for i, (name, method) in enumerate(self._resolve(optimizers)):
            result = method(
                problem, seed=derive_seed(seed, 100 + i), **dict(options.get(name, {}))
            )
            coded = self.space.clip_coded(result.x)
            config = self.objective.config_from_coded(coded)
            simulated = self.objective(coded)
            entries.append(
                OptimaEntry(
                    method=name,
                    coded=np.asarray(coded, dtype=float),
                    config=config,
                    rsm_value=float(result.value),
                    simulated_value=float(simulated),
                    optimizer_result=result,
                )
            )
        return entries

    @staticmethod
    def _resolve(
        optimizers: OptimizerArg,
    ) -> List[Tuple[str, Callable[..., OptimizationResult]]]:
        """Names -> registry lookups; mappings pass through unchanged."""
        if optimizers is None:
            optimizers = DEFAULT_OPTIMIZERS
        if isinstance(optimizers, Mapping):
            return list(optimizers.items())
        return [(name, get_optimizer(name)) for name in optimizers]

    # -- one-call flow -----------------------------------------------------------

    def run(
        self,
        n_runs: int = 10,
        seed: int = 0,
        doe_method: str = "fedorov",
        design: Optional[Design] = None,
        optimizers: OptimizerArg = None,
        design_name: str = "d-optimal",
        design_options: Optional[Mapping[str, object]] = None,
        surrogate: str = "quadratic",
        surrogate_options: Optional[Mapping[str, object]] = None,
        optimizer_options: Optional[Mapping[str, Mapping[str, object]]] = None,
    ) -> ExplorationOutcome:
        """Execute the full paper workflow and return every artefact."""
        design = design or self.build_design(
            n_runs,
            method=doe_method,
            seed=seed,
            design=design_name,
            options=design_options,
        )
        responses = self.run_design(design)
        model = self.fit_model(
            design, responses, surrogate=surrogate, options=surrogate_options
        )
        X = model.basis.expand(design.points)
        diag = diagnostics(X, responses, model.fit)
        original_coded = self.space.to_coded(
            np.array(self.original_config.as_vector())
        )
        original_value = self.objective(original_coded)
        optima = self.optimise_model(
            model,
            seed=seed,
            optimizers=optimizers,
            optimizer_options=optimizer_options,
        )
        return ExplorationOutcome(
            space=self.space,
            design=design,
            responses=responses,
            model=model,
            fit_diagnostics=diag,
            original_config=self.original_config,
            original_transmissions=float(original_value),
            optima=optima,
            n_simulations=self.objective.n_simulations,
            metric=getattr(self.objective, "metric", "transmissions"),
        )
