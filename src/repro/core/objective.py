"""The simulation objective: coded point -> transmissions per hour.

Wraps the simulation backends behind a cached, coded-variable callable so
the DOE driver, the RSM verifier and the optimisers all evaluate the same
thing.  Three design decisions worth knowing:

- **Common random numbers**: every evaluation uses the *same* base seed,
  so two configurations are compared under identical measurement-noise
  draws.  This is the standard variance-reduction choice for simulation
  optimisation and makes the whole flow reproducible.
- **Caching**: evaluations are memoised on the rounded coded point;
  verification re-runs of design points are free.
- **Scenario dispatch**: evaluations are expressed as
  :class:`~repro.scenario.Scenario` values and executed through a
  :class:`~repro.core.batch.BatchRunner`, so any registered backend works
  (``backend="detailed"``) and whole design matrices fan out over
  ``jobs`` workers.  Custom ``parts_factory`` callables (which cannot be
  serialised into a scenario) fall back to direct in-process simulation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.batch import BatchRunner
from repro.errors import ConfigError
from repro.rng import derive_seed
from repro.rsm.coding import ParameterSpace
from repro.scenario import PartsSpec, Scenario
from repro.system.components import paper_system
from repro.system.config import SystemConfig, paper_parameter_space
from repro.system.result import SystemResult
from repro.system.vibration import VibrationProfile

#: Named objective metrics: how one :class:`SystemResult` becomes the
#: scalar the DOE/RSM/optimiser pipeline maximises.  ``transmissions``
#: is the paper's figure of merit; the others let a declarative
#: :class:`~repro.core.study.StudySpec` study different responses of the
#: same simulations.
METRICS: Dict[str, Callable[[SystemResult], float]] = {
    "transmissions": lambda r: float(r.transmissions),
    "transmissions-per-hour": lambda r: float(r.transmissions_per_hour),
    "final-voltage": lambda r: float(r.final_voltage),
}


def metric_names() -> "list[str]":
    """Names accepted by ``SimulationObjective(metric=...)``."""
    return sorted(METRICS)


def get_metric(name: str) -> Callable[[SystemResult], float]:
    """The metric extractor registered under ``name``."""
    try:
        return METRICS[name]
    except KeyError:
        known = ", ".join(metric_names())
        raise ConfigError(f"unknown metric {name!r} (known: {known})") from None


class SimulationObjective:
    """Callable objective over coded [-1, 1]^3 points.

    Parameters
    ----------
    space, horizon, seed, cache_decimals:
        As before (coded box, simulated seconds, common-random-numbers
        base seed, memo-key rounding).
    profile_factory:
        Zero-argument callable returning the excitation profile for each
        evaluation (default: the paper profile).
    parts_factory:
        Zero-argument callable returning fresh :class:`SystemParts`.
        Providing one disables scenario dispatch (the callable cannot be
        serialised); the default system keeps the full scenario path.
    parts:
        Declarative alternative to ``parts_factory``: a
        :class:`~repro.scenario.PartsSpec` that stays serialisable and
        parallelisable.
    backend:
        Registered backend name used for every evaluation.
    jobs:
        Worker count for :meth:`evaluate_design` batches.
    store:
        Optional :class:`~repro.store.ResultStore` attached to the
        internal :class:`~repro.core.batch.BatchRunner`: design-point
        simulations are then persisted and shared across runs, so a
        repeated exploration (same seed, same horizon) re-simulates
        nothing.
    metric:
        Named :data:`METRICS` entry extracting the scalar objective from
        each :class:`SystemResult` (default: the paper's transmission
        count).
    """

    def __init__(
        self,
        space: Optional[ParameterSpace] = None,
        horizon: float = 3600.0,
        seed: int = 0,
        profile_factory: Optional[Callable[[], VibrationProfile]] = None,
        parts_factory: Optional[Callable[[], object]] = None,
        cache_decimals: int = 9,
        parts: Optional[PartsSpec] = None,
        backend: str = "envelope",
        jobs: int = 1,
        store=None,
        metric: str = "transmissions",
    ):
        if parts is not None and parts_factory is not None:
            raise ConfigError(
                "pass either parts (declarative) or parts_factory "
                "(opaque callable), not both"
            )
        self.space = space or paper_parameter_space()
        self.horizon = horizon
        self.seed = seed
        self.profile_factory = profile_factory or VibrationProfile.paper_profile
        self.parts_factory = parts_factory or paper_system
        self.cache_decimals = cache_decimals
        self.parts_spec = parts
        self.backend = backend
        self.jobs = int(jobs)
        self.metric = metric
        self._metric_fn = get_metric(metric)
        self._declarative_parts = parts_factory is None
        self._runner = BatchRunner(jobs=self.jobs, seed=seed, store=store)
        self._cache: Dict[Tuple[float, ...], float] = {}
        self.n_simulations = 0

    # -- evaluation ------------------------------------------------------------

    def config_from_coded(self, coded: np.ndarray) -> SystemConfig:
        """Translate a coded point to a natural-units configuration."""
        natural = self.space.to_natural(self.space.clip_coded(coded))
        return SystemConfig.from_vector(list(np.atleast_1d(natural)))

    def scenario_for(
        self, config: SystemConfig, record_traces: bool = False
    ) -> Scenario:
        """The scenario one evaluation of ``config`` runs.

        Every evaluation shares the seed ``derive_seed(self.seed, 1)``
        (common random numbers, see module docstring).
        """
        from repro.backends import quiet_options

        options = {} if record_traces else quiet_options(self.backend)
        return Scenario(
            config=config,
            parts=self.parts_spec,
            profile=self.profile_factory(),
            horizon=self.horizon,
            seed=derive_seed(self.seed, 1),
            backend=self.backend,
            options=options,
        )

    def scenario_key(self, coded: np.ndarray) -> str:
        """Content key of the scenario an evaluation of ``coded`` runs.

        Applies the same memo-key rounding as :meth:`__call__`, so this
        is exactly the key a result store is probed/populated with --
        what study resumption uses to derive completion state.
        """
        key = self._key(coded)
        return self.scenario_for(self.config_from_coded(np.array(key))).cache_key()

    def simulate(self, config: SystemConfig, record_traces: bool = False) -> SystemResult:
        """Run one full simulation of ``config``."""
        self.n_simulations += 1
        if self._declarative_parts:
            return self._runner.run_one(self.scenario_for(config, record_traces))
        from repro.system.envelope import EnvelopeSimulator

        sim = EnvelopeSimulator(
            config,
            parts=self.parts_factory(),
            profile=self.profile_factory(),
            seed=derive_seed(self.seed, 1),
            record_traces=record_traces,
        )
        return sim.run(self.horizon)

    def __call__(self, coded: np.ndarray) -> float:
        """Transmissions achieved by the coded configuration (cached)."""
        key = self._key(coded)
        if key not in self._cache:
            result = self.simulate(self.config_from_coded(np.array(key)))
            self._cache[key] = self._metric_fn(result)
        return self._cache[key]

    def evaluate_design(self, points_coded: np.ndarray) -> np.ndarray:
        """Evaluate every row of a coded design matrix.

        Uncached rows are batched through the runner, so with
        ``jobs > 1`` a whole DOE (or Fig. 4 sweep) runs in parallel.
        """
        pts = np.atleast_2d(np.asarray(points_coded, dtype=float))
        keys = [self._key(row) for row in pts]
        if self._declarative_parts:
            missing = [k for k in dict.fromkeys(keys) if k not in self._cache]
            if missing:
                scenarios = [
                    self.scenario_for(self.config_from_coded(np.array(k)))
                    for k in missing
                ]
                self.n_simulations += len(missing)
                for k, result in zip(missing, self._runner.run(scenarios)):
                    self._cache[k] = self._metric_fn(result)
        return np.array([self(row) for row in pts])

    def _key(self, coded: np.ndarray) -> Tuple[float, ...]:
        return tuple(
            np.round(np.asarray(coded, dtype=float), self.cache_decimals)
        )

    def cache_size(self) -> int:
        """Number of memoised evaluations."""
        return len(self._cache)
