"""The simulation objective: coded point -> transmissions per hour.

Wraps the envelope simulator behind a cached, coded-variable callable so
the DOE driver, the RSM verifier and the optimisers all evaluate the same
thing.  Two design decisions worth knowing:

- **Common random numbers**: every evaluation uses the *same* base seed,
  so two configurations are compared under identical measurement-noise
  draws.  This is the standard variance-reduction choice for simulation
  optimisation and makes the whole flow reproducible.
- **Caching**: evaluations are memoised on the rounded coded point;
  verification re-runs of design points are free.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.rng import derive_seed
from repro.rsm.coding import ParameterSpace
from repro.system.components import paper_system
from repro.system.config import SystemConfig, paper_parameter_space
from repro.system.envelope import EnvelopeSimulator
from repro.system.result import SystemResult
from repro.system.vibration import VibrationProfile


class SimulationObjective:
    """Callable objective over coded [-1, 1]^3 points."""

    def __init__(
        self,
        space: Optional[ParameterSpace] = None,
        horizon: float = 3600.0,
        seed: int = 0,
        profile_factory: Optional[Callable[[], VibrationProfile]] = None,
        parts_factory: Optional[Callable[[], object]] = None,
        cache_decimals: int = 9,
    ):
        self.space = space or paper_parameter_space()
        self.horizon = horizon
        self.seed = seed
        self.profile_factory = profile_factory or VibrationProfile.paper_profile
        self.parts_factory = parts_factory or paper_system
        self.cache_decimals = cache_decimals
        self._cache: Dict[Tuple[float, ...], float] = {}
        self.n_simulations = 0

    # -- evaluation ------------------------------------------------------------

    def config_from_coded(self, coded: np.ndarray) -> SystemConfig:
        """Translate a coded point to a natural-units configuration."""
        natural = self.space.to_natural(self.space.clip_coded(coded))
        return SystemConfig.from_vector(list(np.atleast_1d(natural)))

    def simulate(self, config: SystemConfig, record_traces: bool = False) -> SystemResult:
        """Run one full envelope simulation of ``config``."""
        self.n_simulations += 1
        sim = EnvelopeSimulator(
            config,
            parts=self.parts_factory(),
            profile=self.profile_factory(),
            seed=derive_seed(self.seed, 1),
            record_traces=record_traces,
        )
        return sim.run(self.horizon)

    def __call__(self, coded: np.ndarray) -> float:
        """Transmissions achieved by the coded configuration (cached)."""
        key = tuple(np.round(np.asarray(coded, dtype=float), self.cache_decimals))
        if key not in self._cache:
            result = self.simulate(self.config_from_coded(np.array(key)))
            self._cache[key] = float(result.transmissions)
        return self._cache[key]

    def evaluate_design(self, points_coded: np.ndarray) -> np.ndarray:
        """Evaluate every row of a coded design matrix."""
        pts = np.atleast_2d(np.asarray(points_coded, dtype=float))
        return np.array([self(row) for row in pts])

    def cache_size(self) -> int:
        """Number of memoised evaluations."""
        return len(self._cache)
