"""Sensitivity and robustness analysis of the exploration outcome.

Two studies beyond the paper's evaluation:

- :func:`morris_screening` -- elementary-effects (Morris) screening of the
  three firmware parameters on the true simulator: mean |EE| ranks
  parameter influence, the EE standard deviation flags nonlinearity or
  interaction.  This is the cheap global complement to the local Fig. 4
  sweeps.
- :func:`robustness_study` -- re-simulates a configuration across
  perturbed environments (vibration amplitude, starting frequency,
  initial storage voltage) and reports the spread, quantifying how well a
  tuned optimum survives conditions it was not optimised for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.backends import quiet_options
from repro.core.batch import BatchRunner
from repro.core.explorer import ExplorationOutcome
from repro.core.objective import SimulationObjective
from repro.errors import DesignError
from repro.rng import SeedLike, ensure_rng
from repro.rsm.coding import ParameterSpace
from repro.scenario import PartsSpec, Scenario
from repro.system.config import SystemConfig, paper_parameter_space
from repro.system.stochastic import FixedFamily
from repro.system.vibration import VibrationProfile


@dataclass
class MorrisEffect:
    """Elementary-effect statistics for one parameter."""

    name: str
    mu_star: float  # mean absolute elementary effect
    sigma: float  # EE standard deviation (nonlinearity/interaction signal)


def morris_screening(
    objective: Optional[SimulationObjective] = None,
    n_trajectories: int = 6,
    delta: float = 0.5,
    seed: SeedLike = 0,
) -> List[MorrisEffect]:
    """Morris elementary-effects screening over the coded Table V box.

    Each trajectory starts at a random coded point and perturbs one
    parameter at a time by ``delta`` (in coded units), costing
    ``n_trajectories * (k + 1)`` simulations.
    """
    if not 0.0 < delta <= 2.0:
        raise DesignError("Morris delta must be in (0, 2] coded units")
    obj = objective or SimulationObjective(seed=0)
    space = obj.space
    rng = ensure_rng(seed)
    k = space.k
    effects: Dict[int, List[float]] = {i: [] for i in range(k)}

    for _ in range(max(n_trajectories, 1)):
        x = rng.uniform(-1.0, 1.0 - delta, size=k)
        y = obj(x)
        for i in rng.permutation(k):
            x_next = x.copy()
            x_next[i] += delta
            y_next = obj(x_next)
            effects[int(i)].append((y_next - y) / delta)
            x, y = x_next, y_next

    out = []
    for i, param in enumerate(space.parameters):
        ee = np.asarray(effects[i])
        out.append(
            MorrisEffect(
                name=param.name,
                mu_star=float(np.mean(np.abs(ee))),
                sigma=float(np.std(ee)),
            )
        )
    return out


@dataclass
class RobustnessEntry:
    """One perturbed-environment evaluation."""

    label: str
    transmissions: int
    final_voltage: float


@dataclass
class RobustnessReport:
    """Spread of a configuration's performance across environments."""

    config: SystemConfig
    entries: List[RobustnessEntry]

    @property
    def values(self) -> np.ndarray:
        return np.array([e.transmissions for e in self.entries], dtype=float)

    @property
    def worst(self) -> float:
        return float(np.min(self.values))

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    def spread(self) -> float:
        """Relative spread (max-min)/mean."""
        mean = self.mean
        if mean <= 0:
            return float("inf")
        return float((np.max(self.values) - self.worst) / mean)


def perturbation_family(
    config: SystemConfig,
    accel_levels_mg: Sequence[float] = (45.0, 60.0, 75.0),
    f_starts: Sequence[float] = (62.0, 64.0, 66.0),
    v_inits: Sequence[float] = (2.55, 2.65, 2.75),
    horizon: float = 3600.0,
    backend: str = "envelope",
) -> FixedFamily:
    """One-factor-at-a-time perturbations as a scenario family.

    One factor varies at a time around the nominal evaluation conditions
    (60 mg, 64 Hz start, 2.65 V); the family seed supplies the
    measurement-noise seed at expansion time, and extra replicates get
    derived per-grid-point seeds like any other family.
    """
    scenarios: List[Scenario] = []

    def plan(label: str, profile: VibrationProfile, v_init: float) -> None:
        scenarios.append(
            Scenario(
                config=config,
                parts=PartsSpec(v_init=v_init),
                profile=profile,
                horizon=horizon,
                seed=None,
                backend=backend,
                options=quiet_options(backend),
                name=label,
            )
        )

    for mg in accel_levels_mg:
        plan(
            f"accel {mg:g} mg",
            VibrationProfile.paper_profile(accel_mg=mg),
            2.65,
        )
    for f0 in f_starts:
        plan(
            f"f_start {f0:g} Hz",
            VibrationProfile.paper_profile(f_start=f0),
            2.65,
        )
    for v0 in v_inits:
        plan(f"v_init {v0:g} V", VibrationProfile.paper_profile(), v0)

    return FixedFamily(name="robustness", scenarios=tuple(scenarios))


def robustness_study(
    config: Union[SystemConfig, ExplorationOutcome],
    seed: int = 0,
    accel_levels_mg: Sequence[float] = (45.0, 60.0, 75.0),
    f_starts: Sequence[float] = (62.0, 64.0, 66.0),
    v_inits: Sequence[float] = (2.55, 2.65, 2.75),
    horizon: float = 3600.0,
    jobs: int = 1,
    backend: str = "envelope",
    store=None,
) -> RobustnessReport:
    """Evaluate ``config`` across a small grid of perturbed environments.

    ``config`` is a :class:`SystemConfig`, or an
    :class:`~repro.core.explorer.ExplorationOutcome` (e.g. fresh from a
    :class:`~repro.core.study.Study`) whose best verified optimum is
    studied -- the natural follow-up question "does the tuned optimum
    survive conditions it was not optimised for?" in one call.

    The grid is :func:`perturbation_family` -- 9 scenarios by default,
    expanded with ``seed`` and dispatched as one scenario batch on
    ``jobs`` workers.  ``store`` (a :class:`~repro.store.ResultStore`)
    persists the evaluations for later queries and repeat studies.
    """
    if isinstance(config, ExplorationOutcome):
        config = config.best().config
    family = perturbation_family(
        config,
        accel_levels_mg=accel_levels_mg,
        f_starts=f_starts,
        v_inits=v_inits,
        horizon=horizon,
        backend=backend,
    )
    scenarios = family.expand(n=1, seed=seed)
    results = BatchRunner(jobs=jobs, store=store).run(scenarios)
    entries = [
        RobustnessEntry(s.name, r.transmissions, r.final_voltage)
        for s, r in zip(scenarios, results)
    ]
    return RobustnessReport(config=config, entries=entries)
