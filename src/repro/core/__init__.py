"""The paper's contribution: RSM-based design space exploration.

Workflow (paper sections II and V):

1. generate a D-optimal design over the Table V parameter space,
2. simulate the complete system at each design point,
3. fit a quadratic response surface (eq. 9),
4. maximise it with Simulated Annealing and a Genetic Algorithm,
5. verify the optima with full simulations (Table VI / Fig. 5).

- :mod:`repro.core.objective` -- cached simulation objective.
- :mod:`repro.core.explorer` -- :class:`~repro.core.explorer.DesignSpaceExplorer`.
- :mod:`repro.core.study` -- declarative, serialisable, resumable studies
  (:class:`~repro.core.study.StudySpec` / :class:`~repro.core.study.Study`).
- :mod:`repro.core.batch` -- parallel scenario batches (:class:`BatchRunner`).
- :mod:`repro.core.report` -- table/figure regeneration helpers.
- :mod:`repro.core.campaign` -- JSON persistence of exploration outcomes.
- :mod:`repro.core.paper` -- canonical paper setup in one call.
"""

from repro.core.batch import BatchRunner
from repro.core.campaign import load_outcome, save_outcome
from repro.core.explorer import DesignSpaceExplorer, ExplorationOutcome, OptimaEntry
from repro.core.study import (
    Study,
    StudySpec,
    StudyStatus,
    named_study,
    paper_study_spec,
    study_names,
    study_status,
    study_statuses,
)
from repro.core.montecarlo import EnvironmentModel, MonteCarloResult, monte_carlo
from repro.core.multiobjective import MultiObjectiveSimulation, explore_tradeoff
from repro.core.objective import SimulationObjective
from repro.core.paper import paper_explorer, paper_objective, run_paper_flow
from repro.core.report import (
    design_space_sweep,
    format_table,
    table_vi_rows,
)
from repro.core.sensitivity import morris_screening, robustness_study
from repro.system.config import paper_parameter_space

__all__ = [
    "BatchRunner",
    "DesignSpaceExplorer",
    "EnvironmentModel",
    "ExplorationOutcome",
    "MonteCarloResult",
    "MultiObjectiveSimulation",
    "OptimaEntry",
    "SimulationObjective",
    "Study",
    "StudySpec",
    "StudyStatus",
    "design_space_sweep",
    "explore_tradeoff",
    "format_table",
    "load_outcome",
    "monte_carlo",
    "morris_screening",
    "named_study",
    "paper_explorer",
    "paper_objective",
    "paper_parameter_space",
    "paper_study_spec",
    "robustness_study",
    "run_paper_flow",
    "save_outcome",
    "study_names",
    "study_status",
    "study_statuses",
    "table_vi_rows",
]
