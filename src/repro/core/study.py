"""Declarative, serialisable, resumable design-space studies.

A :class:`StudySpec` is to the exploration flow what
:class:`~repro.scenario.Scenario` is to one simulation: the complete
DoE -> simulate -> surrogate -> optimise -> verify pipeline as an
immutable, JSON-round-trippable value.  Every stage is a *name* resolved
through a process-wide registry -- designs
(:mod:`repro.doe.registry`), surrogates (:mod:`repro.rsm.registry`),
optimisers (:mod:`repro.optimize.registry`) -- so a spec file can swap
the paper's 10-run D-optimal + quadratic RSM + SA/GA pipeline for an
LHS + cubic + pattern-search one without touching code.  Misspelled
stage names, metrics, or a bad ``jobs`` count fail at *spec
construction* (``ConfigError`` listing the valid choices), not deep
inside a half-finished run.

A :class:`Study` executes a spec.  Attached to a
:class:`~repro.store.ResultStore` it journals the spec and the resolved
design matrix in the store (the ``studies`` table), pushes every
simulation through a store-backed
:class:`~repro.core.batch.BatchRunner` in durable chunks, and derives
stage completion from the results table itself -- a design point is
done exactly when its content-addressed result row exists.  Kill the
process at any moment and ``Study.resume(store, name)`` (or ``repro-wsn
study resume NAME --store DB``) re-simulates only the missing points
and reproduces a bit-identical
:class:`~repro.core.explorer.ExplorationOutcome`.

The named ``"paper"`` spec (:func:`paper_study_spec`) pins the exact
evaluation of the paper's section V; ``run_paper_flow`` and the CLI
``explore`` path are thin wrappers over it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.explorer import (
    DEFAULT_OPTIMIZERS,
    DesignSpaceExplorer,
    ExplorationOutcome,
)
from repro.core.objective import SimulationObjective, get_metric
from repro.doe.design import Design
from repro.doe.registry import get_design
from repro.errors import ConfigError, DesignError
from repro.obs.trace import span
from repro.optimize.registry import get_optimizer
from repro.rsm.coding import ParameterSpace
from repro.rsm.registry import get_surrogate
from repro.scenario import PartsSpec
from repro.system.config import ORIGINAL_DESIGN, SystemConfig, paper_parameter_space
from repro.system.vibration import VibrationProfile

#: Version stamp written into every study JSON payload.
STUDY_SCHEMA = 1

#: Option values that survive a JSON round-trip unchanged.
_JSON_SCALARS = (bool, int, float, str, type(None))


def _check_options(label: str, options: Mapping[str, object]) -> Dict[str, object]:
    """Copy ``options``, rejecting anything that cannot live in JSON.

    ``None`` (a JSON ``null`` in a hand-written spec) means "no
    options"; any other non-mapping is a spec error, not a crash.
    """
    if options is None:
        return {}
    if not isinstance(options, Mapping):
        raise ConfigError(
            f"{label} options must be a JSON object, "
            f"got {type(options).__name__}"
        )
    out = {}
    for key, value in dict(options).items():
        if not isinstance(key, str):
            raise ConfigError(f"{label} option names must be strings")
        if not isinstance(value, _JSON_SCALARS):
            raise ConfigError(
                f"{label} option {key!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
        out[key] = value
    return out


@dataclass(frozen=True)
class StudySpec:
    """One fully specified exploration pipeline.

    Parameters
    ----------
    name:
        Cosmetic label (journal/default study name); excluded from
        equality and :meth:`cache_key` like a scenario's name.
    space:
        The design space (default: the paper's Table V).
    metric:
        Named response metric (:data:`repro.core.objective.METRICS`)
        each simulation is reduced to.
    design, design_options, n_runs:
        Named :mod:`repro.doe.registry` generator, its options, and the
        run count (structural designs such as ``ccd`` ignore it).
    surrogate, surrogate_options:
        Named :mod:`repro.rsm.registry` fitter and its options.
    optimizers, optimizer_options:
        Named :mod:`repro.optimize.registry` methods (each maximises
        the fitted surface and is verified by simulation), plus
        per-name keyword options.
    original:
        The reference configuration the outcome is compared against
        (Table VI's first column).
    parts, profile:
        Scenario template overrides: physical-system spec and
        excitation profile (``None`` = the paper profile).
    horizon, seed, backend, jobs:
        Simulated seconds per evaluation, the base seed (common random
        numbers + stage seed derivation), the simulation backend, and
        the worker count.  ``jobs`` is an execution detail and is
        excluded from :meth:`cache_key`.
    """

    name: str = field(default="", compare=False)
    space: ParameterSpace = field(default_factory=paper_parameter_space)
    metric: str = "transmissions"
    design: str = "d-optimal"
    design_options: Mapping[str, object] = field(default_factory=dict)
    n_runs: int = 10
    surrogate: str = "quadratic"
    surrogate_options: Mapping[str, object] = field(default_factory=dict)
    optimizers: Tuple[str, ...] = DEFAULT_OPTIMIZERS
    optimizer_options: Mapping[str, Mapping[str, object]] = field(
        default_factory=dict
    )
    original: SystemConfig = ORIGINAL_DESIGN
    parts: Optional[PartsSpec] = None
    profile: Optional[VibrationProfile] = None
    horizon: float = 3600.0
    seed: int = 0
    backend: str = "envelope"
    jobs: int = 1

    def __post_init__(self) -> None:
        # Normalise everything mutable or numpy-typed so the value is
        # genuinely frozen and JSON-serialisable...
        object.__setattr__(self, "n_runs", int(self.n_runs))
        object.__setattr__(self, "horizon", float(self.horizon))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "jobs", int(self.jobs))
        if self.optimizers is None or isinstance(self.optimizers, str):
            raise ConfigError(
                "study optimizers must be a list of registered names"
            )
        try:
            object.__setattr__(
                self, "optimizers", tuple(str(n) for n in self.optimizers)
            )
        except TypeError:
            raise ConfigError(
                "study optimizers must be a list of registered names"
            ) from None
        object.__setattr__(
            self, "design_options", _check_options("design", self.design_options)
        )
        object.__setattr__(
            self,
            "surrogate_options",
            _check_options("surrogate", self.surrogate_options),
        )
        per_optimizer = self.optimizer_options
        if per_optimizer is None:
            per_optimizer = {}
        if not isinstance(per_optimizer, Mapping):
            raise ConfigError(
                f"optimizer_options must be a JSON object, "
                f"got {type(per_optimizer).__name__}"
            )
        object.__setattr__(
            self,
            "optimizer_options",
            {
                str(name): _check_options(f"optimizer {name!r}", opts)
                for name, opts in dict(per_optimizer).items()
            },
        )
        # ...then fail fast: every stage name resolves NOW, with the
        # registry error listing the valid alternatives, instead of
        # blowing up after the design has already been simulated.
        get_metric(self.metric)
        get_design(self.design)
        get_surrogate(self.surrogate)
        if not self.optimizers:
            raise ConfigError("a study needs at least one optimizer")
        for optimizer in self.optimizers:
            get_optimizer(optimizer)
        for name in self.optimizer_options:
            if name not in self.optimizers:
                raise ConfigError(
                    f"optimizer_options for {name!r}, which is not in "
                    f"optimizers {list(self.optimizers)}"
                )
        if self.jobs < 1:
            raise ConfigError("study jobs must be >= 1")
        if self.n_runs < 1:
            raise ConfigError("study n_runs must be >= 1")
        if self.horizon <= 0.0:
            raise ConfigError("study horizon must be positive")
        if not self.backend or not isinstance(self.backend, str):
            raise ConfigError("study backend must be a non-empty string")
        # The simulator has exactly the three Table V firmware knobs,
        # bound *positionally* through SystemConfig.from_vector -- a
        # renamed or reordered space would silently put a watchdog
        # period into the clock field, so reject it here, not after the
        # design has been simulated.
        expected = [p.name for p in paper_parameter_space().parameters]
        if [p.name for p in self.space.parameters] != expected:
            raise ConfigError(
                f"study space parameters must be {expected} in that order "
                f"(the simulated node has exactly these firmware knobs); "
                f"got {[p.name for p in self.space.parameters]}"
            )

    def __hash__(self) -> int:
        return hash(self.cache_key())

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON dictionary (includes the schema version)."""
        return {
            "schema": STUDY_SCHEMA,
            "name": self.name,
            "space": self.space.to_payload(),
            "metric": self.metric,
            "design": self.design,
            "design_options": dict(self.design_options),
            "n_runs": self.n_runs,
            "surrogate": self.surrogate,
            "surrogate_options": dict(self.surrogate_options),
            "optimizers": list(self.optimizers),
            "optimizer_options": {
                name: dict(opts) for name, opts in self.optimizer_options.items()
            },
            "original": self.original.as_vector(),
            "parts": None if self.parts is None else self.parts.to_payload(),
            "profile": None if self.profile is None else self.profile.to_payload(),
            "horizon": self.horizon,
            "seed": self.seed,
            "backend": self.backend,
            "jobs": self.jobs,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StudySpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Unversioned payloads are accepted as schema 1; unknown versions
        and non-object payloads raise :class:`~repro.errors.DesignError`.
        """
        if not isinstance(payload, Mapping):
            raise DesignError(
                f"study payload must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        schema = payload.get("schema", STUDY_SCHEMA)
        if schema != STUDY_SCHEMA:
            raise DesignError(
                f"unsupported study schema {schema!r} "
                f"(this library reads schema {STUDY_SCHEMA})"
            )
        # Field-name typos must be as loud as stage-name typos: a spec
        # with "optimiser" would otherwise silently run the defaults.
        known = {
            "schema", "name", "space", "metric", "design", "design_options",
            "n_runs", "surrogate", "surrogate_options", "optimizers",
            "optimizer_options", "original", "parts", "profile", "horizon",
            "seed", "backend", "jobs",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise DesignError(
                f"unknown study spec field(s) {unknown} "
                f"(known: {', '.join(sorted(known))})"
            )
        space = payload.get("space")
        parts = payload.get("parts")
        profile = payload.get("profile")
        original = payload.get("original")
        try:
            return cls._from_fields(payload, space, parts, profile, original)
        except (ValueError, TypeError, AttributeError) as exc:
            # int("ten"), "space": "paper", etc.: malformed JSON values
            # get the same clean error contract as every other spec
            # mistake.
            raise DesignError(f"study spec has a malformed value: {exc}") from exc

    @classmethod
    def _from_fields(cls, payload, space, parts, profile, original) -> "StudySpec":
        return cls(
            name=str(payload.get("name", "")),
            space=(
                paper_parameter_space()
                if space is None
                else ParameterSpace.from_payload(space)
            ),
            metric=str(payload.get("metric", "transmissions")),
            design=str(payload.get("design", "d-optimal")),
            design_options=payload.get("design_options", {}),
            n_runs=int(payload.get("n_runs", 10)),
            surrogate=str(payload.get("surrogate", "quadratic")),
            surrogate_options=payload.get("surrogate_options", {}),
            optimizers=payload.get("optimizers", DEFAULT_OPTIMIZERS),
            optimizer_options=payload.get("optimizer_options", {}),
            original=(
                ORIGINAL_DESIGN
                if original is None
                else SystemConfig.from_vector(original)
            ),
            parts=None if parts is None else PartsSpec.from_payload(parts),
            profile=(
                None if profile is None else VibrationProfile.from_payload(profile)
            ),
            horizon=float(payload.get("horizon", 3600.0)),
            seed=int(payload.get("seed", 0)),
            backend=str(payload.get("backend", "envelope")),
            jobs=int(payload.get("jobs", 1)),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "StudySpec":
        """Parse :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DesignError(f"study file is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: Union[str, Path]) -> None:
        """Write the spec to a JSON file."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "StudySpec":
        """Read a spec from a JSON file."""
        return cls.from_json(Path(path).read_text())

    def cache_key(self) -> str:
        """Content hash: equal-valued specs share one key.

        The cosmetic ``name`` and the execution-only ``jobs`` count are
        excluded (neither changes any produced number), so a re-labelled
        spec run on more workers journals under the same identity.
        """
        payload = self.to_dict()
        del payload["name"]
        del payload["jobs"]
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> str:
        """One-line human-readable summary."""
        label = f"{self.name}: " if self.name else ""
        return (
            f"{label}{self.design}({self.n_runs}) -> {self.surrogate} -> "
            f"{'+'.join(self.optimizers)}, metric={self.metric}, "
            f"backend={self.backend}, horizon={self.horizon:g} s, "
            f"seed={self.seed}"
        )


@dataclass(frozen=True)
class StudyStatus:
    """Progress snapshot of one (journaled) study."""

    name: str
    total: int
    done: int
    design_name: str
    created_at: str

    @property
    def pending(self) -> int:
        return self.total - self.done

    @property
    def complete(self) -> bool:
        return self.done >= self.total

    def summary(self) -> str:
        """One-line progress report."""
        pct = 100.0 * self.done / self.total if self.total else 100.0
        return (
            f"{self.name} [{self.design_name}]: {self.done}/{self.total} "
            f"simulations stored ({pct:.0f}%), {self.pending} pending"
        )


class Study:
    """Executor for one :class:`StudySpec`.

    Parameters
    ----------
    spec:
        The pipeline to run.
    store:
        Optional :class:`~repro.store.ResultStore`.  When given, the
        spec and its resolved design matrix are journaled in the store,
        every simulation is written through in durable chunks, and the
        whole study becomes resumable.
    jobs:
        Worker override (default: the spec's ``jobs``).
    chunk_size:
        Design points per durable chunk when a store is attached
        (default ``max(4 * jobs, 8)``); a crash wastes at most one
        chunk of simulations.  Without a store there is nothing durable
        to protect, so the whole design stage executes as **one batch**
        -- on a batch-capable backend one (sharded) ``run_batch``
        dispatch for the entire DoE.
    on_name_conflict:
        What to do when the journal already holds this name with a
        *different* spec: ``"error"`` (default -- the explicit ``study
        run``/``resume`` workflow should fail loudly) or ``"suffix"``
        (journal under ``name@<spec-key prefix>`` instead -- the
        cache-style wrappers ``run_paper_flow`` and ``explore`` use
        this so re-running with a tweaked seed or horizon against the
        same store keeps working, each variant journaled separately).
    """

    def __init__(
        self,
        spec: StudySpec,
        store=None,
        jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        on_name_conflict: str = "error",
    ):
        if on_name_conflict not in ("error", "suffix"):
            raise ConfigError(
                f"unknown on_name_conflict {on_name_conflict!r} "
                f"(known: error, suffix)"
            )
        self.spec = spec
        self.store = store
        self.jobs = spec.jobs if jobs is None else int(jobs)
        if self.jobs < 1:
            raise ConfigError("study jobs must be >= 1")
        if chunk_size is None:
            # Durable chunks only matter when results are written
            # through to a store; storeless studies batch the whole
            # design stage in one dispatch instead.
            self.chunk_size = max(4 * self.jobs, 8) if store is not None else 0
        else:
            self.chunk_size = int(chunk_size)
            if self.chunk_size < 1:
                raise ConfigError("chunk_size must be >= 1")
        self.name = spec.name or f"study-{spec.cache_key()[:12]}"
        if store is not None and on_name_conflict == "suffix":
            row = store.get_study(self.name)
            if row is not None and row.spec_key != spec.cache_key():
                self.name = f"{self.name}@{spec.cache_key()[:12]}"
        self.objective = SimulationObjective(
            space=spec.space,
            horizon=spec.horizon,
            seed=spec.seed,
            profile_factory=(
                None if spec.profile is None else (lambda: spec.profile)
            ),
            parts=spec.parts,
            backend=spec.backend,
            jobs=self.jobs,
            store=store,
            metric=spec.metric,
        )
        self.explorer = DesignSpaceExplorer(
            spec.space, self.objective, original_config=spec.original
        )
        self._design: Optional[Design] = None
        self._keys: Optional[List[str]] = None

    # -- journal ----------------------------------------------------------------

    @classmethod
    def load(cls, store, name: str, jobs: Optional[int] = None) -> "Study":
        """Rehydrate a journaled study from ``store``."""
        row = store.get_study(name)
        if row is None:
            known = ", ".join(study_names(store)) or "(none)"
            raise ConfigError(
                f"unknown study {name!r} in {store.path} (known: {known})"
            )
        spec = StudySpec.from_dict(row.spec)
        # Rebind to the *journal* name unconditionally: a suffix-journaled
        # row ("paper@<key>") stores a spec whose cosmetic name is still
        # "paper", and resuming under that name would read the wrong row.
        spec = replace(spec, name=name)
        return cls(spec, store=store, jobs=jobs)

    @classmethod
    def resume(
        cls, store, name: str, jobs: Optional[int] = None
    ) -> ExplorationOutcome:
        """Continue a journaled study after an interruption.

        Completed design points are served from the store (zero
        re-simulation); only missing work runs.  The returned outcome is
        bit-identical to an uninterrupted run of the same spec.
        """
        return cls.load(store, name, jobs=jobs).run()

    def design(self) -> Design:
        """The resolved design matrix: journaled, or freshly generated.

        Read-only -- journaling happens when :meth:`run` starts (so a
        ``status()`` peek never writes anything).  The generator is
        deterministic in the spec seed, but the journal is still
        authoritative: a resumed study reuses the exact matrix it
        already paid simulations for.
        """
        if self._design is not None:
            return self._design
        design = self._journaled_design()
        if design is None:
            spec = self.spec
            design = self.explorer.build_design(
                n_runs=spec.n_runs,
                seed=spec.seed,
                design=spec.design,
                options=spec.design_options,
            )
        self._design = design
        return design

    def _journaled_design(self) -> Optional[Design]:
        if self.store is None:
            return None
        row = self.store.get_study(self.name)
        if row is None:
            return None
        if row.spec_key != self.spec.cache_key():
            raise ConfigError(
                f"study {self.name!r} in {self.store.path} was journaled "
                f"with a different spec; pick another name or store"
            )
        return Design(
            np.asarray(row.points, dtype=float),
            space=self.spec.space,
            name=row.design_name,
        )

    def _ensure_journaled(self) -> Design:
        """Journal the resolved design (first writer wins) and return it."""
        design = self.design()
        if self.store is None:
            return design
        inserted = self.store.put_study(
            self.name,
            self.spec.to_dict(),
            self.spec.cache_key(),
            design.name,
            design.points.tolist(),
            self.design_keys(),
        )
        if not inserted:
            # Raced another creator (or an earlier run): their journal
            # wins, and the spec-key check rejects a mismatched spec.
            design = self._journaled_design()
            self._design = design
            self._keys = None
        return design

    # -- completion state --------------------------------------------------------

    def design_keys(self) -> List[str]:
        """Content keys of every simulation the design stage issues.

        The design-point scenarios (deduplicated -- designs may repeat
        centre points) plus the original-design verification run.  A
        study's completion state is exactly "which of these rows exist
        in the results table".
        """
        if self._keys is None:
            self._keys = self._keys_for(self.design())
        return self._keys

    def _keys_for(self, design: Design) -> List[str]:
        keys = [
            self.objective.scenario_key(np.asarray(row, dtype=float))
            for row in design.points
        ]
        original_coded = self.spec.space.to_coded(
            np.array(self.spec.original.as_vector())
        )
        keys.append(self.objective.scenario_key(original_coded))
        return list(dict.fromkeys(keys))

    def status(self) -> StudyStatus:
        """Progress derived from the durable results table.

        For a journaled study, keys come from the journal row (so no
        scenarios are rebuilt); an unjournaled one derives them from
        the spec.
        """
        row = self.store.get_study(self.name) if self.store is not None else None
        if row is not None:
            if row.spec_key != self.spec.cache_key():
                raise ConfigError(
                    f"study {self.name!r} in {self.store.path} was journaled "
                    f"with a different spec; pick another name or store"
                )
            return _row_status(self.store, row)
        keys = self.design_keys()
        done = self.store.count_keys(keys) if self.store is not None else 0
        return StudyStatus(
            name=self.name,
            total=len(keys),
            done=done,
            design_name=self.design().name,
            created_at="",
        )

    # -- execution ---------------------------------------------------------------

    def run(
        self, on_chunk: Optional[Callable[[int, int], None]] = None
    ) -> ExplorationOutcome:
        """Execute (or continue) the pipeline and return every artefact.

        With a store attached, design points are simulated in durable
        chunks of :attr:`chunk_size` and every result is written
        through before the next chunk starts; stored points are never
        re-simulated.  The optimisation stages are deterministic in the
        spec seed, so re-running a completed study costs only store
        reads and cheap surface maximisation.

        ``on_chunk`` is the job-context hook: called as
        ``on_chunk(done, total)`` over the design points at every
        durable chunk boundary (before each chunk and once after the
        last), where a supervising job runner heartbeats its claim and
        checks for cancellation -- an exception raised from the hook
        aborts between chunks, losing no stored work.
        """
        spec = self.spec
        design = self._ensure_journaled()
        points = design.points
        # ``chunk_size == 0`` (no store, no explicit size) runs the
        # whole design stage as a single batch: one (sharded)
        # ``run_batch`` dispatch on batch-capable backends.
        step = self.chunk_size or max(len(points), 1)
        with span("study.run", study=self.name, points=len(points)):
            for start in range(0, len(points), step):
                if on_chunk is not None:
                    on_chunk(start, len(points))
                with span(
                    "study.chunk",
                    study=self.name,
                    start=start,
                    size=min(step, len(points) - start),
                ):
                    self.objective.evaluate_design(points[start : start + step])
            if on_chunk is not None:
                on_chunk(len(points), len(points))
        return self.explorer.run(
            n_runs=spec.n_runs,
            seed=spec.seed,
            design=design,
            optimizers=spec.optimizers,
            surrogate=spec.surrogate,
            surrogate_options=spec.surrogate_options,
            optimizer_options=spec.optimizer_options,
        )


# -- journal queries -----------------------------------------------------------


def _row_status(store, row) -> StudyStatus:
    """Status straight from a journal row (no spec hydration)."""
    return StudyStatus(
        name=row.name,
        total=row.total,
        done=row.done(store),
        design_name=row.design_name,
        created_at=row.created_at,
    )


def study_names(store) -> List[str]:
    """Names of every study journaled in ``store``, sorted."""
    return store.study_names()


def study_status(store, name: str) -> StudyStatus:
    """Progress snapshot of one journaled study (journal row only)."""
    row = store.get_study(name)
    if row is None:
        known = ", ".join(study_names(store)) or "(none)"
        raise ConfigError(
            f"unknown study {name!r} in {store.path} (known: {known})"
        )
    return _row_status(store, row)


def study_statuses(store) -> List[StudyStatus]:
    """Progress snapshots for every study journaled in ``store``.

    Derived from the journal rows alone -- a study whose spec names a
    plugin-registered stage (unavailable in this process) still lists
    correctly; only *executing* it needs the stage registered.
    """
    return [_row_status(store, row) for row in store.studies()]


# -- named study library -------------------------------------------------------


def variant_name(spec: StudySpec, canonical: StudySpec) -> StudySpec:
    """Qualify a library-derived spec's name when its content differs.

    The cache-style wrappers (``run_paper_flow``, CLI ``explore``) build
    tweaked copies of a library spec; journaling those under the bare
    library name would squat it -- the canonical study could then never
    claim its own name in that store.  A content-differing variant is
    renamed ``<name>@<spec-key prefix>`` instead, which is collision-free
    by construction (same name implies same spec key).
    """
    if spec.cache_key() == canonical.cache_key():
        return spec
    return replace(spec, name=f"{spec.name}@{spec.cache_key()[:12]}")


def paper_study_spec(
    seed: int = 0,
    n_runs: int = 10,
    horizon: float = 3600.0,
    backend: str = "envelope",
    jobs: int = 1,
) -> StudySpec:
    """The paper's section-V evaluation as a declarative spec.

    Table V space, 10-run Fedorov D-optimal design, quadratic response
    surface (eq. 9), SA + GA maximisation, transmissions metric --
    executing it reproduces ``run_paper_flow`` (Table VI) exactly.
    """
    return StudySpec(
        name="paper",
        seed=seed,
        n_runs=n_runs,
        horizon=horizon,
        backend=backend,
        jobs=jobs,
    )


#: Factories for the named studies (each call returns a fresh value).
STUDY_LIBRARY: Dict[str, Callable[[], StudySpec]] = {
    "paper": paper_study_spec,
}


def named_study(name: str) -> StudySpec:
    """Instantiate a library study spec by name."""
    try:
        factory = STUDY_LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(STUDY_LIBRARY))
        raise ConfigError(f"unknown study {name!r} (known: {known})") from None
    return factory()
