"""Canonical paper setup in one call.

These helpers pin the exact evaluation conditions of the paper's section V
(60 mg, +5 Hz steps every 25 minutes, one hour, Table V ranges, 10-run
D-optimal, SA + GA) so examples, tests and benches all reproduce the same
artefacts.  Since the declarative study API landed they are thin wrappers
over the named ``"paper"`` :class:`~repro.core.study.StudySpec`:
``run_paper_flow(...)`` is literally ``Study(paper_study_spec(...),
store=store).run()``, so everything it produces is journaled, store-backed
and resumable exactly like any other study.
"""

from __future__ import annotations

from repro.core.explorer import DesignSpaceExplorer, ExplorationOutcome
from repro.core.objective import SimulationObjective
from repro.core.study import Study, paper_study_spec, variant_name
from repro.system.config import ORIGINAL_DESIGN, paper_parameter_space


def paper_objective(
    seed: int = 0,
    horizon: float = 3600.0,
    backend: str = "envelope",
    jobs: int = 1,
    store=None,
) -> SimulationObjective:
    """The paper's simulation objective: transmissions in one hour.

    ``store`` (a :class:`~repro.store.ResultStore`) persists every
    design-point simulation, making repeated explorations incremental.
    """
    return SimulationObjective(
        space=paper_parameter_space(),
        horizon=horizon,
        seed=seed,
        backend=backend,
        jobs=jobs,
        store=store,
    )


def paper_explorer(
    seed: int = 0,
    horizon: float = 3600.0,
    backend: str = "envelope",
    jobs: int = 1,
    store=None,
) -> DesignSpaceExplorer:
    """Explorer preconfigured with the paper's space and objective."""
    return DesignSpaceExplorer(
        paper_parameter_space(),
        paper_objective(
            seed=seed, horizon=horizon, backend=backend, jobs=jobs, store=store
        ),
        original_config=ORIGINAL_DESIGN,
    )


def run_paper_flow(
    seed: int = 0,
    n_runs: int = 10,
    horizon: float = 3600.0,
    backend: str = "envelope",
    jobs: int = 1,
    store=None,
) -> ExplorationOutcome:
    """Execute the complete evaluation of the paper's section V.

    Returns the outcome whose pieces map to the paper's artefacts:
    ``outcome.model`` (eq. 9), ``outcome.design`` (the 10-run D-optimal
    design), ``outcome.optima`` + ``outcome.original_transmissions``
    (Table VI).  With ``store`` the run is journaled as the study
    ``"paper"`` and can be resumed with ``Study.resume(store, "paper")``.
    """
    # Cache-style API: only the canonical spec journals as "paper";
    # tweaked settings journal under paper@<spec key> so re-running
    # variants against one store never refuses (and never squats the
    # canonical name) like an explicit `study run` name clash would.
    spec = variant_name(
        paper_study_spec(
            seed=seed, n_runs=n_runs, horizon=horizon, backend=backend, jobs=jobs
        ),
        paper_study_spec(),
    )
    return Study(spec, store=store, on_name_conflict="suffix").run()
