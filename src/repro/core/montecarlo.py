"""Monte Carlo analysis of a configuration under environment uncertainty.

The paper evaluates each configuration against one fixed vibration
profile; real deployments see scattered conditions.  ``monte_carlo``
samples random environments (acceleration level, starting frequency,
frequency-step sign, initial storage voltage, measurement-noise stream)
and returns the distribution of the figure of merit, so configurations
can be compared by quantiles instead of a single nominal number.

The sampling itself is a :class:`~repro.system.stochastic.ScenarioFamily`
(:class:`EnvironmentFamily` here, or any family passed in -- e.g. one of
the named stochastic families), so the whole study is "expand a family,
fan the expansion out over a :class:`~repro.core.batch.BatchRunner`
(``jobs`` workers) on any registered backend".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.backends import quiet_options
from repro.core.batch import BatchRunner
from repro.errors import ConfigError
from repro.rng import SeedLike, derive_seed, ensure_rng
from repro.scenario import PartsSpec, Scenario
from repro.system.config import ORIGINAL_DESIGN, SystemConfig
from repro.system.stochastic import ScenarioFamily
from repro.system.vibration import VibrationProfile

#: Stream components mirroring :mod:`repro.system.stochastic`: the
#: serial environment-sampling stream and the per-sample noise seeds
#: are decorrelated sub-streams of the one family seed.
_ENV_STREAM = 0
_NOISE_STREAM = 1


@dataclass(frozen=True)
class EnvironmentModel:
    """Sampling ranges for the uncertain environment."""

    accel_mg: "tuple[float, float]" = (55.0, 65.0)
    f_start: "tuple[float, float]" = (62.0, 72.0)
    f_step_abs: float = 5.0
    step_period: "tuple[float, float]" = (1200.0, 1800.0)
    v_init: "tuple[float, float]" = (2.60, 2.75)

    def sample(self, rng: np.random.Generator) -> "tuple[VibrationProfile, float]":
        """Draw one (profile, initial voltage) environment."""
        accel = rng.uniform(*self.accel_mg)
        f0 = rng.uniform(*self.f_start)
        step = self.f_step_abs * (1.0 if rng.uniform() < 0.5 else -1.0)
        # Keep the walk inside the 60-80 Hz tunable band.
        if f0 + 2 * step < 60.0 or f0 + 2 * step > 80.0:
            step = -step
        period = rng.uniform(*self.step_period)
        profile = VibrationProfile.paper_profile(
            f_start=f0, f_step=step, step_period=period, accel_mg=accel
        )
        return profile, rng.uniform(*self.v_init)


@dataclass(frozen=True, eq=False)
class EnvironmentFamily(ScenarioFamily):
    """The Monte Carlo sampling model as a scenario family.

    ``expand(n, seed)`` draws ``n`` environments from one serial rng
    stream (seeded ``derive_seed(seed, 0)``) -- sample ``i`` depends
    only on the samples before it, so growing ``n`` extends the list
    without changing the existing prefix -- and gives scenario ``i``
    the measurement-noise seed ``derive_seed(seed, i, 1)``, the same
    ``(seed, index, stream)`` discipline as
    :class:`~repro.system.stochastic.StochasticFamily`, making the
    study reproducible for any worker count.
    """

    environment: EnvironmentModel = field(default_factory=EnvironmentModel)
    config: SystemConfig = ORIGINAL_DESIGN
    horizon: float = 3600.0
    backend: str = "envelope"
    name: str = "monte-carlo"

    def expand(self, n: int = 1, seed: SeedLike = 0) -> List[Scenario]:
        if n < 1:
            raise ConfigError("need at least one Monte Carlo sample")
        # Same seed discipline as StochasticFamily.expand: an integer
        # seed is the derivation base directly, a live generator is
        # collapsed to one once.  The environment stream and the
        # per-sample measurement-noise seeds then come from
        # ``derive_seed(base, ...)`` -- the earlier ad-hoc
        # ``rng.integers(0, 2**31 - 1)`` draw both silently excluded
        # the top value and diverged from the documented derivation.
        base = 0 if seed is None else seed
        if not isinstance(base, int):
            base = int(ensure_rng(base).integers(0, 2**31 - 1))
        rng = ensure_rng(derive_seed(base, _ENV_STREAM))
        scenarios: List[Scenario] = []
        for i in range(n):
            profile, v_init = self.environment.sample(rng)
            scenarios.append(
                Scenario(
                    config=self.config,
                    parts=PartsSpec(
                        v_init=v_init, initial_frequency=profile.frequency(0.0)
                    ),
                    profile=profile,
                    horizon=self.horizon,
                    seed=derive_seed(base, i, _NOISE_STREAM),
                    backend=self.backend,
                    options=quiet_options(self.backend),
                    name=f"mc-{i}",
                )
            )
        return scenarios


@dataclass
class MonteCarloResult:
    """Distribution of the figure of merit across sampled environments."""

    config: SystemConfig
    transmissions: np.ndarray
    final_voltages: np.ndarray

    @property
    def n_samples(self) -> int:
        return len(self.transmissions)

    @property
    def mean(self) -> float:
        return float(np.mean(self.transmissions))

    @property
    def std(self) -> float:
        return float(np.std(self.transmissions))

    def quantile(self, q: float) -> float:
        """Transmission quantile (q in [0, 1])."""
        return float(np.quantile(self.transmissions, q))

    def summary(self) -> str:
        """One-line distribution report."""
        return (
            f"{self.config.describe()}: mean {self.mean:.0f} tx, "
            f"p10 {self.quantile(0.1):.0f}, median {self.quantile(0.5):.0f}, "
            f"p90 {self.quantile(0.9):.0f} over {self.n_samples} environments"
        )


def monte_carlo(
    config: SystemConfig,
    n_samples: int = 20,
    environment: Optional[EnvironmentModel] = None,
    horizon: Optional[float] = None,
    seed: SeedLike = 0,
    jobs: int = 1,
    backend: Optional[str] = None,
    family: Optional[ScenarioFamily] = None,
    store=None,
) -> MonteCarloResult:
    """Simulate ``config`` across ``n_samples`` random environments.

    The environments come from a scenario family: by default an
    :class:`EnvironmentFamily` built from ``environment`` (uniform
    paper-profile perturbations), or any family passed as ``family`` --
    e.g. ``repro.named_family("factory-floor")`` for a Markov
    regime-switching study.  ``config`` (and ``horizon`` / ``backend``
    when given) is rebound onto the family, so the study always
    evaluates *this* configuration under the family's environment.  The
    expansion executes as one scenario batch on ``jobs`` workers;
    results are independent of the worker count because every scenario
    carries its own derived seed.  ``store`` (a
    :class:`~repro.store.ResultStore`) persists every sample, so a
    repeated or widened study only simulates what is new.
    """
    import dataclasses

    if n_samples < 1:
        raise ConfigError("need at least one Monte Carlo sample")
    if family is None:
        family = EnvironmentFamily(
            environment=environment or EnvironmentModel(),
            config=config,
            horizon=3600.0 if horizon is None else horizon,
            backend=backend or "envelope",
        )
    elif dataclasses.is_dataclass(family):
        names = {f.name for f in dataclasses.fields(family)}
        overrides = {
            key: value
            for key, value in (
                ("config", config),
                ("horizon", horizon),
                ("backend", backend),
            )
            if value is not None and key in names
        }
        if overrides:
            family = dataclasses.replace(family, **overrides)
    scenarios = family.expand(n=n_samples, seed=seed)
    results = BatchRunner(jobs=jobs, cache_size=0, store=store).run(scenarios)
    return MonteCarloResult(
        config=config,
        transmissions=np.asarray([r.transmissions for r in results], dtype=float),
        final_voltages=np.asarray([r.final_voltage for r in results], dtype=float),
    )
