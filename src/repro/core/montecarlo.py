"""Monte Carlo analysis of a configuration under environment uncertainty.

The paper evaluates each configuration against one fixed vibration
profile; real deployments see scattered conditions.  ``monte_carlo``
samples random environments (acceleration level, starting frequency,
frequency-step sign, initial storage voltage, measurement-noise stream)
and returns the distribution of the figure of merit, so configurations
can be compared by quantiles instead of a single nominal number.

Each sampled environment becomes a :class:`~repro.scenario.Scenario`, so
the whole study fans out over a :class:`~repro.core.batch.BatchRunner`
(``jobs`` workers) and any registered backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.backends import quiet_options
from repro.core.batch import BatchRunner
from repro.errors import ConfigError
from repro.rng import SeedLike, derive_seed, ensure_rng
from repro.scenario import PartsSpec, Scenario
from repro.system.config import SystemConfig
from repro.system.vibration import VibrationProfile


@dataclass(frozen=True)
class EnvironmentModel:
    """Sampling ranges for the uncertain environment."""

    accel_mg: "tuple[float, float]" = (55.0, 65.0)
    f_start: "tuple[float, float]" = (62.0, 72.0)
    f_step_abs: float = 5.0
    step_period: "tuple[float, float]" = (1200.0, 1800.0)
    v_init: "tuple[float, float]" = (2.60, 2.75)

    def sample(self, rng: np.random.Generator) -> "tuple[VibrationProfile, float]":
        """Draw one (profile, initial voltage) environment."""
        accel = rng.uniform(*self.accel_mg)
        f0 = rng.uniform(*self.f_start)
        step = self.f_step_abs * (1.0 if rng.uniform() < 0.5 else -1.0)
        # Keep the walk inside the 60-80 Hz tunable band.
        if f0 + 2 * step < 60.0 or f0 + 2 * step > 80.0:
            step = -step
        period = rng.uniform(*self.step_period)
        profile = VibrationProfile.paper_profile(
            f_start=f0, f_step=step, step_period=period, accel_mg=accel
        )
        return profile, rng.uniform(*self.v_init)


@dataclass
class MonteCarloResult:
    """Distribution of the figure of merit across sampled environments."""

    config: SystemConfig
    transmissions: np.ndarray
    final_voltages: np.ndarray

    @property
    def n_samples(self) -> int:
        return len(self.transmissions)

    @property
    def mean(self) -> float:
        return float(np.mean(self.transmissions))

    @property
    def std(self) -> float:
        return float(np.std(self.transmissions))

    def quantile(self, q: float) -> float:
        """Transmission quantile (q in [0, 1])."""
        return float(np.quantile(self.transmissions, q))

    def summary(self) -> str:
        """One-line distribution report."""
        return (
            f"{self.config.describe()}: mean {self.mean:.0f} tx, "
            f"p10 {self.quantile(0.1):.0f}, median {self.quantile(0.5):.0f}, "
            f"p90 {self.quantile(0.9):.0f} over {self.n_samples} environments"
        )


def monte_carlo(
    config: SystemConfig,
    n_samples: int = 20,
    environment: Optional[EnvironmentModel] = None,
    horizon: float = 3600.0,
    seed: SeedLike = 0,
    jobs: int = 1,
    backend: str = "envelope",
) -> MonteCarloResult:
    """Simulate ``config`` across ``n_samples`` random environments.

    Environments are sampled serially (one rng stream), then executed as
    a scenario batch on ``jobs`` workers; results are independent of the
    worker count because each scenario carries its own derived seed.
    """
    if n_samples < 1:
        raise ConfigError("need at least one Monte Carlo sample")
    env = environment or EnvironmentModel()
    rng = ensure_rng(seed)
    base_seed = int(rng.integers(0, 2**31 - 1))
    scenarios: List[Scenario] = []
    for i in range(n_samples):
        profile, v_init = env.sample(rng)
        scenarios.append(
            Scenario(
                config=config,
                parts=PartsSpec(
                    v_init=v_init, initial_frequency=profile.frequency(0.0)
                ),
                profile=profile,
                horizon=horizon,
                seed=derive_seed(base_seed, i),
                backend=backend,
                options=quiet_options(backend),
                name=f"mc-{i}",
            )
        )
    results = BatchRunner(jobs=jobs, cache_size=0).run(scenarios)
    return MonteCarloResult(
        config=config,
        transmissions=np.asarray([r.transmissions for r in results], dtype=float),
        final_voltages=np.asarray([r.final_voltage for r in results], dtype=float),
    )
