"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the event-driven simulation kernel reaches an invalid state."""


class ConvergenceError(SimulationError):
    """Raised when an iterative numerical method fails to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual norm, if known.
    """

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SingularMatrixError(SimulationError):
    """Raised when the MNA system matrix is singular (e.g. floating node)."""


class NetlistError(ReproError):
    """Raised for malformed circuit netlists (unknown nodes, bad values...)."""


class ModelError(ReproError):
    """Raised for invalid physical-model parameters (negative mass etc.)."""


class DesignError(ReproError):
    """Raised for invalid designs of experiments or parameter spaces."""


class FitError(ReproError):
    """Raised when a response-surface fit cannot be performed.

    Typical causes: fewer runs than model coefficients, or a rank-deficient
    design matrix.
    """


class OptimizationError(ReproError):
    """Raised when an optimiser is configured inconsistently."""


class ConfigError(ReproError):
    """Raised for invalid system configurations (out-of-range parameters)."""


class CoordinationError(ReproError):
    """Raised when a distributed campaign cannot be driven to completion.

    Typical causes: a partition exhausted its retry budget on failing
    or vanishing workers, or the coordinator's deadline passed with
    partitions still unmerged.  Everything already stream-merged into
    the coordinator's store stays durable; a later ``resume()`` picks
    up from the journal.
    """


class StoreError(ReproError):
    """Raised for result-store integrity violations.

    The store is content-addressed with first-writer-wins canonical
    rows, so two stores holding the same key must hold byte-identical
    rows.  A merge or sync that finds diverging bytes under one key --
    or a ``gc`` about to delete rows an active job derives its progress
    from -- raises this instead of silently corrupting or regressing.
    """
