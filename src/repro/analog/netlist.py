"""Circuit container: components, nodes and index assignment.

Nodes are referred to by name; ``"0"`` (or :data:`Circuit.GROUND`) is the
ground reference.  :meth:`Circuit.build` freezes the netlist into an
:class:`repro.analog.mna.MnaSystem` that assigns every non-ground node a row
in the MNA matrix and every component its extra (branch-current / internal
state) rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import NetlistError

if TYPE_CHECKING:  # pragma: no cover
    from repro.analog.components.base import Component
    from repro.analog.mna import MnaSystem


class Circuit:
    """A mutable netlist.

    Examples
    --------
    >>> from repro.analog.components import Resistor, VoltageSource
    >>> ckt = Circuit("divider")
    >>> _ = ckt.add(VoltageSource("V1", "in", "0", dc=10.0))
    >>> _ = ckt.add(Resistor("R1", "in", "out", 1e3))
    >>> _ = ckt.add(Resistor("R2", "out", "0", 1e3))
    >>> sorted(ckt.node_names())
    ['in', 'out']
    """

    GROUND = "0"

    def __init__(self, title: str = "circuit"):
        self.title = title
        self.components: List["Component"] = []
        self._names: set = set()

    def add(self, component: "Component") -> "Component":
        """Add a component; names must be unique within the circuit."""
        if component.name in self._names:
            raise NetlistError(
                f"duplicate component name {component.name!r} in circuit {self.title!r}"
            )
        self._names.add(component.name)
        self.components.append(component)
        return component

    def component(self, name: str) -> "Component":
        """Look a component up by name."""
        for comp in self.components:
            if comp.name == name:
                return comp
        raise NetlistError(f"no component named {name!r} in circuit {self.title!r}")

    def node_names(self) -> List[str]:
        """All non-ground node names, in first-use order."""
        seen: Dict[str, None] = {}
        for comp in self.components:
            for node in comp.node_names():
                if node != self.GROUND and node not in seen:
                    seen[node] = None
        return list(seen)

    def validate(self) -> None:
        """Sanity-check the netlist: non-empty, and a ground reference exists."""
        if not self.components:
            raise NetlistError(f"circuit {self.title!r} has no components")
        grounded = any(
            self.GROUND in comp.node_names() for comp in self.components
        )
        if not grounded:
            raise NetlistError(
                f"circuit {self.title!r} has no connection to ground node "
                f"{self.GROUND!r}; the MNA matrix would be singular"
            )

    def build(self) -> "MnaSystem":
        """Freeze the netlist into an :class:`~repro.analog.mna.MnaSystem`."""
        from repro.analog.mna import MnaSystem

        self.validate()
        return MnaSystem(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Circuit({self.title!r}, {len(self.components)} components)"
