"""Modified nodal analysis: index assignment and system assembly.

:class:`MnaSystem` freezes a :class:`~repro.analog.netlist.Circuit`:

- every non-ground node gets a row/column (ground maps to index ``-1``),
- every component's extra unknowns (branch currents, internal states) get
  rows after the nodes,
- :meth:`assemble` produces the Jacobian ``G`` and right-hand side ``b``
  for a given iterate, timestep and analysis mode.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analog.components.base import (
    Component,
    METHOD_TRAP,
    MODE_DC,
    MODE_TRAN,
    Stamps,
)
from repro.analog.netlist import Circuit
from repro.errors import NetlistError


class MnaSystem:
    """A circuit frozen into numbered MNA unknowns."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.node_names = circuit.node_names()
        self._node_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.node_names)
        }
        self._node_index[Circuit.GROUND] = -1
        offset = len(self.node_names)
        self._extra_labels: List[str] = []
        for comp in circuit.components:
            n_extra = comp.n_extras()
            extra_idx = list(range(offset, offset + n_extra))
            node_idx = [self._node_index[n] for n in comp.node_names()]
            comp.bind(node_idx, extra_idx)
            for j in range(n_extra):
                self._extra_labels.append(f"{comp.name}#{j}")
            offset += n_extra
        self.size = offset
        self.nonlinear = [c for c in circuit.components if c.is_nonlinear()]

    # -- queries -----------------------------------------------------------

    def node_index(self, name: str) -> int:
        """Matrix index of node ``name`` (ground is ``-1``)."""
        try:
            return self._node_index[name]
        except KeyError:
            raise NetlistError(f"unknown node {name!r}") from None

    def voltage(self, x: np.ndarray, name: str) -> float:
        """Voltage of node ``name`` in solution vector ``x``."""
        idx = self.node_index(name)
        return 0.0 if idx < 0 else float(x[idx])

    def labels(self) -> List[str]:
        """Human-readable labels for every unknown, in matrix order."""
        return list(self.node_names) + list(self._extra_labels)

    def initial_vector(self) -> np.ndarray:
        """Starting vector: zero node voltages, component-provided extras.

        Capacitor initial voltages are applied by
        :meth:`seed_initial_conditions` because they live on node voltages,
        not extras.
        """
        x = np.zeros(self.size)
        for comp in self.circuit.components:
            extras = comp.initial_extras()
            for idx, val in zip(comp.extra_idx, extras):
                x[idx] = val
        return x

    def seed_initial_conditions(self, x: np.ndarray) -> None:
        """Write capacitor ``v0`` initial conditions into vector ``x``.

        Each capacitor's positive terminal is set to ``v(n) + v0``; applied
        in netlist order, so later elements may override earlier ones when
        they share nodes.
        """
        from repro.analog.components.passives import Capacitor

        for comp in self.circuit.components:
            if isinstance(comp, Capacitor) and comp.v0 != 0.0:
                if isinstance(comp, _supercap_type()):
                    p, internal, n = comp.node_idx
                    vn = 0.0 if n < 0 else x[n]
                    if internal >= 0:
                        x[internal] = vn + comp.v0
                    if p >= 0:
                        x[p] = vn + comp.v0
                else:
                    p, n = comp.node_idx
                    vn = 0.0 if n < 0 else x[n]
                    if p >= 0:
                        x[p] = vn + comp.v0

    # -- assembly ------------------------------------------------------------

    def assemble(
        self,
        x: np.ndarray,
        x_prev: np.ndarray,
        t: float,
        dt: float,
        mode: str = MODE_TRAN,
        method: str = METHOD_TRAP,
        gmin: float = 0.0,
    ) -> Stamps:
        """Stamp every component and return the filled :class:`Stamps`."""
        st = Stamps(
            self.size, x, x_prev, t, dt, mode=mode, method=method, gmin=gmin
        )
        for comp in self.circuit.components:
            comp.stamp(st)
        return st

    def update_states(self, x: np.ndarray, x_prev: np.ndarray, dt: float, method: str) -> None:
        """Commit companion-model state on every component after a step."""
        for comp in self.circuit.components:
            comp.update_state(x, x_prev, dt, method)

    def reset_states(self) -> None:
        """Reset companion-model history on components that track it."""
        for comp in self.circuit.components:
            reset = getattr(comp, "reset", None)
            if callable(reset):
                reset()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"MnaSystem({self.circuit.title!r}, nodes={len(self.node_names)}, "
            f"unknowns={self.size})"
        )


def _supercap_type():
    from repro.analog.components.passives import Supercapacitor

    return Supercapacitor
