"""DC operating-point analysis with gmin stepping.

The plain Newton solve from a zero start diverges for circuits like the
paper's diode bridge feeding a large storage capacitor.  ``operating_point``
therefore falls back to *gmin stepping*: it first solves with a large
minimum conductance shunting every junction (an easy, almost-linear
problem), then relaxes gmin geometrically towards its final value, using
each solution to seed the next -- the standard SPICE homotopy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analog.components.base import METHOD_TRAP, MODE_DC
from repro.analog.mna import MnaSystem
from repro.analog.newton import NewtonOptions, solve_newton
from repro.errors import ConvergenceError


def operating_point(
    system: MnaSystem,
    t: float = 0.0,
    options: Optional[NewtonOptions] = None,
    gmin_start: float = 1e-2,
    gmin_steps: int = 12,
) -> np.ndarray:
    """Compute the DC operating point of ``system`` at analysis time ``t``.

    Returns the solution vector; read node voltages with
    :meth:`MnaSystem.voltage`.
    """
    opts = options or NewtonOptions()
    x0 = system.initial_vector()
    system.seed_initial_conditions(x0)
    try:
        return solve_newton(
            system, x0, x0, t, dt=1.0, mode=MODE_DC, method=METHOD_TRAP, options=opts
        )
    except ConvergenceError:
        pass

    # gmin stepping homotopy.
    x = x0.copy()
    gmin_final = opts.gmin
    if gmin_start <= gmin_final:
        gmin_start = max(1e-3, gmin_final * 1e9)
    ratio = (gmin_final / gmin_start) ** (1.0 / max(gmin_steps - 1, 1))
    gmin = gmin_start
    last_error: Optional[ConvergenceError] = None
    for _ in range(gmin_steps):
        try:
            x = solve_newton(
                system,
                x,
                x,
                t,
                dt=1.0,
                mode=MODE_DC,
                method=METHOD_TRAP,
                options=opts,
                gmin=gmin,
            )
            last_error = None
        except ConvergenceError as exc:
            last_error = exc
        gmin *= ratio
    if last_error is not None:
        raise ConvergenceError(
            f"DC operating point failed even with gmin stepping: {last_error}"
        )
    # Final polish at the true gmin.
    return solve_newton(
        system, x, x, t, dt=1.0, mode=MODE_DC, method=METHOD_TRAP, options=opts
    )
