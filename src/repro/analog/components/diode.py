"""Shockley diode with Newton junction limiting.

The diode is the only strongly nonlinear element in the paper's system (the
rectifying bridge between the microgenerator coil and the supercapacitor).
The model is the standard exponential law

    ``i = Is (exp(v / (n Vt)) - 1) + gmin * v``

with two numerical safeguards used by production circuit simulators:

- the exponential is linearised above a critical voltage so a wild Newton
  iterate cannot overflow, and
- :meth:`Diode.limit_update` applies SPICE-style ``pnjlim`` damping to the
  junction voltage between Newton iterations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analog.components.base import Component, Stamps
from repro.errors import NetlistError
from repro.units import thermal_voltage


class Diode(Component):
    """PN junction diode between anode ``p`` and cathode ``n``.

    Parameters
    ----------
    saturation_current:
        ``Is`` in amps (default 1e-12, a small-signal silicon diode; the
        rectifier bench uses Schottky-like 1e-8 for a lower knee).
    emission_coefficient:
        Ideality factor ``n`` (default 1.5).
    temperature_kelvin:
        Junction temperature for ``Vt``.
    """

    #: Junction voltage above which the exponential is linearised.
    _EXP_LIMIT = 40.0

    def __init__(
        self,
        name: str,
        p: str,
        n: str,
        saturation_current: float = 1e-12,
        emission_coefficient: float = 1.5,
        temperature_kelvin: float = 300.15,
    ):
        super().__init__(name, (p, n))
        if saturation_current <= 0.0:
            raise NetlistError(f"diode {name!r}: saturation current must be > 0")
        if emission_coefficient <= 0.0:
            raise NetlistError(f"diode {name!r}: emission coefficient must be > 0")
        self.isat = float(saturation_current)
        self.nvt = float(emission_coefficient) * thermal_voltage(temperature_kelvin)
        #: Critical voltage used by the junction limiter.
        self.vcrit = self.nvt * math.log(self.nvt / (math.sqrt(2.0) * self.isat))

    # -- device equations ------------------------------------------------------

    def current_and_conductance(self, vd: float) -> "tuple[float, float]":
        """Return ``(i, di/dv)`` with the overflow-safe exponential."""
        arg = vd / self.nvt
        if arg > self._EXP_LIMIT:
            # Linearise beyond the limit: continue with the tangent.
            e = math.exp(self._EXP_LIMIT)
            i = self.isat * (e * (1.0 + (arg - self._EXP_LIMIT)) - 1.0)
            g = self.isat * e / self.nvt
        else:
            e = math.exp(arg)
            i = self.isat * (e - 1.0)
            g = self.isat * e / self.nvt
        return i, g

    def is_nonlinear(self) -> bool:
        return True

    def stamp(self, st: Stamps) -> None:
        p, n = self.node_idx
        vd = st.v(p) - st.v(n)
        i, g = self.current_and_conductance(vd)
        g += st.gmin
        i += st.gmin * vd
        ieq = i - g * vd
        st.stamp_conductance(p, n, g)
        st.stamp_current_source(p, n, ieq)

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n = self.node_idx
        vp = 0.0 if p < 0 else x_op[p]
        vn = 0.0 if n < 0 else x_op[n]
        _, g = self.current_and_conductance(float(vp - vn))
        if p >= 0:
            G[p, p] += g
        if n >= 0:
            G[n, n] += g
        if p >= 0 and n >= 0:
            G[p, n] -= g
            G[n, p] -= g

    def limit_update(self, x_new: np.ndarray, x_old: np.ndarray) -> None:
        """SPICE ``pnjlim``: damp forward-bias jumps of the junction voltage."""
        p, n = self.node_idx
        v_new = (0.0 if p < 0 else x_new[p]) - (0.0 if n < 0 else x_new[n])
        v_old = (0.0 if p < 0 else x_old[p]) - (0.0 if n < 0 else x_old[n])
        v_lim = self._pnjlim(float(v_new), float(v_old))
        if v_lim == v_new:
            return
        delta = v_lim - v_new
        # Split the correction across the two (non-ground) terminals.
        if p >= 0 and n >= 0:
            x_new[p] += 0.5 * delta
            x_new[n] -= 0.5 * delta
        elif p >= 0:
            x_new[p] += delta
        elif n >= 0:
            x_new[n] -= delta

    def _pnjlim(self, v_new: float, v_old: float) -> float:
        """Berkeley SPICE junction limiting."""
        vt = self.nvt
        if v_new > self.vcrit and abs(v_new - v_old) > 2.0 * vt:
            if v_old > 0.0:
                arg = 1.0 + (v_new - v_old) / vt
                if arg > 0.0:
                    return v_old + vt * math.log(arg)
                return self.vcrit
            return vt * math.log(max(v_new / vt, 1e-12))
        return v_new

    def current(self, x: np.ndarray) -> float:
        """Diode current for a given solution vector."""
        p, n = self.node_idx
        vp = 0.0 if p < 0 else x[p]
        vn = 0.0 if n < 0 else x[n]
        i, _ = self.current_and_conductance(float(vp - vn))
        return i
