"""Independent sources: DC/time-dependent voltage and current sources.

Voltage sources carry a branch current as an extra MNA unknown; current
sources stamp the right-hand side only.  Both accept either a constant
``dc`` value or a ``waveform`` callable ``f(t) -> value`` evaluated at the
current simulation time (DC analysis uses ``t`` as given, so waveform
sources are evaluated at the analysis time).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.analog.components.base import Component, Stamps
from repro.errors import NetlistError


class VoltageSource(Component):
    """Independent voltage source from ``p`` to ``n`` (``v_p - v_n = V``)."""

    def __init__(
        self,
        name: str,
        p: str,
        n: str,
        dc: float = 0.0,
        waveform: Optional[Callable[[float], float]] = None,
        ac_magnitude: float = 0.0,
    ):
        super().__init__(name, (p, n))
        self.dc = float(dc)
        self.waveform = waveform
        self.ac_magnitude = float(ac_magnitude)

    def value(self, t: float) -> float:
        """Source voltage at time ``t``."""
        if self.waveform is not None:
            return float(self.waveform(t))
        return self.dc

    def n_extras(self) -> int:
        return 1

    def stamp(self, st: Stamps) -> None:
        p, n = self.node_idx
        (k,) = self.extra_idx
        st.add_G(p, k, 1.0)
        st.add_G(n, k, -1.0)
        st.add_G(k, p, 1.0)
        st.add_G(k, n, -1.0)
        st.add_b(k, self.value(st.t))

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n = self.node_idx
        (k,) = self.extra_idx
        if p >= 0:
            G[p, k] += 1.0
            G[k, p] += 1.0
        if n >= 0:
            G[n, k] += -1.0
            G[k, n] += -1.0
        b[k] += self.ac_magnitude

    def current(self, x: np.ndarray) -> float:
        """Branch current flowing from ``p`` through the source to ``n``."""
        (k,) = self.extra_idx
        return float(x[k])


class CurrentSource(Component):
    """Independent current source pushing current from ``p`` to ``n``."""

    def __init__(
        self,
        name: str,
        p: str,
        n: str,
        dc: float = 0.0,
        waveform: Optional[Callable[[float], float]] = None,
        ac_magnitude: float = 0.0,
    ):
        super().__init__(name, (p, n))
        self.dc = float(dc)
        self.waveform = waveform
        self.ac_magnitude = float(ac_magnitude)

    def value(self, t: float) -> float:
        """Source current at time ``t``."""
        if self.waveform is not None:
            return float(self.waveform(t))
        return self.dc

    def stamp(self, st: Stamps) -> None:
        p, n = self.node_idx
        st.stamp_current_source(p, n, self.value(st.t))

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n = self.node_idx
        if p >= 0:
            b[p] -= self.ac_magnitude
        if n >= 0:
            b[n] += self.ac_magnitude


def sine(amplitude: float, frequency_hz: float, offset: float = 0.0, phase: float = 0.0) -> Callable[[float], float]:
    """Build a sinusoidal waveform callable for source elements."""
    if frequency_hz <= 0.0:
        raise NetlistError("sine waveform frequency must be > 0")
    omega = 2.0 * math.pi * frequency_hz

    def _wave(t: float) -> float:
        return offset + amplitude * math.sin(omega * t + phase)

    return _wave


def step(level_before: float, level_after: float, t_step: float) -> Callable[[float], float]:
    """Build a step waveform switching value at ``t_step``."""

    def _wave(t: float) -> float:
        return level_after if t >= t_step else level_before

    return _wave


def pulse(
    low: float,
    high: float,
    period: float,
    width: float,
    t_start: float = 0.0,
) -> Callable[[float], float]:
    """Build a rectangular pulse train (ideal edges)."""
    if period <= 0.0 or width <= 0.0 or width > period:
        raise NetlistError("pulse: need 0 < width <= period")

    def _wave(t: float) -> float:
        if t < t_start:
            return low
        phase = (t - t_start) % period
        return high if phase < width else low

    return _wave
