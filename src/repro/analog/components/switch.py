"""Voltage-independent switch: a two-state resistor controlled from outside.

The sensor-node and microcontroller consumption models of the paper are
"equivalent resistances" (eq. 8) switched in and out as the device changes
operating phase (sleep / wake-up / sensing / transmission).  ``Switch``
realises exactly that: a resistor whose value toggles between ``r_on`` and
``r_off`` under digital control -- either via the :attr:`closed` attribute
(set by controller processes) or a ``control`` callable evaluated at the
current simulation time.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.analog.components.base import Component, Stamps
from repro.errors import NetlistError


class Switch(Component):
    """Two-state resistive switch between ``p`` and ``n``."""

    def __init__(
        self,
        name: str,
        p: str,
        n: str,
        r_on: float = 1.0,
        r_off: float = 1e12,
        closed: bool = False,
        control: Optional[Callable[[float], bool]] = None,
    ):
        super().__init__(name, (p, n))
        if r_on <= 0.0 or r_off <= 0.0:
            raise NetlistError(f"switch {name!r}: resistances must be > 0")
        if r_on >= r_off:
            raise NetlistError(f"switch {name!r}: need r_on < r_off")
        self.r_on = float(r_on)
        self.r_off = float(r_off)
        self.closed = bool(closed)
        self.control = control

    def resistance(self, t: float) -> float:
        """Effective resistance at time ``t``."""
        state = self.control(t) if self.control is not None else self.closed
        return self.r_on if state else self.r_off

    def stamp(self, st: Stamps) -> None:
        p, n = self.node_idx
        st.stamp_conductance(p, n, 1.0 / self.resistance(st.t))

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n = self.node_idx
        g = 1.0 / self.resistance(0.0)
        if p >= 0:
            G[p, p] += g
        if n >= 0:
            G[n, n] += g
        if p >= 0 and n >= 0:
            G[p, n] -= g
            G[n, p] -= g

    def current(self, x: np.ndarray, t: float = 0.0) -> float:
        """Branch current p->n for a given solution vector."""
        p, n = self.node_idx
        vp = 0.0 if p < 0 else x[p]
        vn = 0.0 if n < 0 else x[n]
        return float((vp - vn) / self.resistance(t))


class VariableResistor(Component):
    """Resistor whose value is set programmatically between timesteps.

    Used for consumption models whose equivalent resistance depends on the
    device phase (Table III / Table IV): the digital controller assigns
    :attr:`resistance` and the analogue solver picks the new value up at the
    next stamp.
    """

    def __init__(self, name: str, p: str, n: str, resistance: float):
        super().__init__(name, (p, n))
        if resistance <= 0.0:
            raise NetlistError(f"variable resistor {name!r}: resistance must be > 0")
        self._resistance = float(resistance)

    @property
    def resistance(self) -> float:
        """Present resistance in ohms."""
        return self._resistance

    @resistance.setter
    def resistance(self, value: float) -> None:
        if value <= 0.0:
            raise NetlistError(f"variable resistor {self.name!r}: resistance must be > 0")
        self._resistance = float(value)

    def stamp(self, st: Stamps) -> None:
        p, n = self.node_idx
        st.stamp_conductance(p, n, 1.0 / self._resistance)

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n = self.node_idx
        g = 1.0 / self._resistance
        if p >= 0:
            G[p, p] += g
        if n >= 0:
            G[n, n] += g
        if p >= 0 and n >= 0:
            G[p, n] -= g
            G[n, p] -= g

    def current(self, x: np.ndarray) -> float:
        """Branch current p->n for a given solution vector."""
        p, n = self.node_idx
        vp = 0.0 if p < 0 else x[p]
        vn = 0.0 if n < 0 else x[n]
        return float((vp - vn) / self._resistance)
