"""Linear passive elements: resistor, capacitor, inductor, supercapacitor.

Capacitors and inductors use SPICE-style companion models:

- backward Euler:  ``i_C = (C/dt) v - (C/dt) v_prev``
- trapezoidal:     ``i_C = (2C/dt) v - (2C/dt) v_prev - i_prev``

and dually for the inductor (whose branch current is an extra unknown).
In DC mode capacitors stamp nothing (open) and inductors become ideal
shorts.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.analog.components.base import (
    Component,
    METHOD_TRAP,
    MODE_DC,
    Stamps,
)
from repro.errors import NetlistError


class Resistor(Component):
    """Ideal linear resistor.

    Parameters
    ----------
    resistance:
        Ohms; must be positive.
    """

    def __init__(self, name: str, p: str, n: str, resistance: float):
        super().__init__(name, (p, n))
        if resistance <= 0.0:
            raise NetlistError(f"resistor {name!r}: resistance must be > 0")
        self.resistance = float(resistance)

    def stamp(self, st: Stamps) -> None:
        p, n = self.node_idx
        st.stamp_conductance(p, n, 1.0 / self.resistance)

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n = self.node_idx
        g = 1.0 / self.resistance
        _ac_conductance(G, p, n, g)

    def current(self, x: np.ndarray) -> float:
        """Branch current p->n for a given solution vector."""
        p, n = self.node_idx
        vp = 0.0 if p < 0 else x[p]
        vn = 0.0 if n < 0 else x[n]
        return float((vp - vn) / self.resistance)


class Capacitor(Component):
    """Ideal linear capacitor with optional initial voltage.

    The initial voltage is honoured by the transient solver's state
    initialisation (it seeds ``x_prev``); in DC analysis the capacitor is an
    open circuit.
    """

    def __init__(self, name: str, p: str, n: str, capacitance: float, v0: float = 0.0):
        super().__init__(name, (p, n))
        if capacitance <= 0.0:
            raise NetlistError(f"capacitor {name!r}: capacitance must be > 0")
        self.capacitance = float(capacitance)
        self.v0 = float(v0)
        self._i_prev = 0.0

    def reset(self) -> None:
        """Clear companion-model history (start of a new transient)."""
        self._i_prev = 0.0

    def stamp(self, st: Stamps) -> None:
        if st.mode == MODE_DC:
            return
        p, n = self.node_idx
        C = self.capacitance
        if st.method == METHOD_TRAP:
            geq = 2.0 * C / st.dt
            ieq = geq * (st.v_prev(p) - st.v_prev(n)) + self._i_prev
        else:
            geq = C / st.dt
            ieq = geq * (st.v_prev(p) - st.v_prev(n))
        st.stamp_conductance(p, n, geq)
        # Companion current source opposing geq at the previous voltage.
        st.stamp_current_source(p, n, -ieq)

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n = self.node_idx
        _ac_conductance(G, p, n, 1j * omega * self.capacitance)

    def update_state(self, x, x_prev, dt, method) -> None:
        p, n = self.node_idx
        vp = 0.0 if p < 0 else x[p]
        vn = 0.0 if n < 0 else x[n]
        vpp = 0.0 if p < 0 else x_prev[p]
        vpn = 0.0 if n < 0 else x_prev[n]
        C = self.capacitance
        if method == METHOD_TRAP:
            self._i_prev = 2.0 * C / dt * ((vp - vn) - (vpp - vpn)) - self._i_prev
        else:
            self._i_prev = C / dt * ((vp - vn) - (vpp - vpn))

    def voltage(self, x: np.ndarray) -> float:
        """Capacitor voltage p-n for a given solution vector."""
        p, n = self.node_idx
        vp = 0.0 if p < 0 else x[p]
        vn = 0.0 if n < 0 else x[n]
        return float(vp - vn)


class Supercapacitor(Capacitor):
    """Supercapacitor: bulk capacitance with equivalent series resistance.

    Modelled as an ideal capacitor behind an ESR; the terminal pair is
    ``(p, n)`` and an internal node carries the true capacitor voltage.
    The paper's 0.55 F storage device is an instance of this model.
    """

    def __init__(
        self,
        name: str,
        p: str,
        n: str,
        capacitance: float,
        esr: float = 0.1,
        v0: float = 0.0,
    ):
        internal = f"{name}#int"
        super().__init__(name, internal, n, capacitance, v0=v0)
        if esr <= 0.0:
            raise NetlistError(f"supercapacitor {name!r}: ESR must be > 0")
        self.esr = float(esr)
        self._terminal_p = p
        self._nodes = (p, internal, n)

    def stamp(self, st: Stamps) -> None:
        p, internal, n = self.node_idx
        st.stamp_conductance(p, internal, 1.0 / self.esr)
        self._stamp_cap(st, internal, n)

    def _stamp_cap(self, st: Stamps, p: int, n: int) -> None:
        if st.mode == MODE_DC:
            return
        C = self.capacitance
        if st.method == METHOD_TRAP:
            geq = 2.0 * C / st.dt
            ieq = geq * (st.v_prev(p) - st.v_prev(n)) + self._i_prev
        else:
            geq = C / st.dt
            ieq = geq * (st.v_prev(p) - st.v_prev(n))
        st.stamp_conductance(p, n, geq)
        st.stamp_current_source(p, n, -ieq)

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, internal, n = self.node_idx
        _ac_conductance(G, p, internal, 1.0 / self.esr)
        _ac_conductance(G, internal, n, 1j * omega * self.capacitance)

    def update_state(self, x, x_prev, dt, method) -> None:
        _, internal, n = self.node_idx
        vp = 0.0 if internal < 0 else x[internal]
        vn = 0.0 if n < 0 else x[n]
        vpp = 0.0 if internal < 0 else x_prev[internal]
        vpn = 0.0 if n < 0 else x_prev[n]
        C = self.capacitance
        if method == METHOD_TRAP:
            self._i_prev = 2.0 * C / dt * ((vp - vn) - (vpp - vpn)) - self._i_prev
        else:
            self._i_prev = C / dt * ((vp - vn) - (vpp - vpn))

    def stored_voltage(self, x: np.ndarray) -> float:
        """Voltage across the internal bulk capacitance."""
        _, internal, n = self.node_idx
        vp = 0.0 if internal < 0 else x[internal]
        vn = 0.0 if n < 0 else x[n]
        return float(vp - vn)


class Inductor(Component):
    """Ideal linear inductor; its branch current is an extra MNA unknown."""

    def __init__(self, name: str, p: str, n: str, inductance: float, i0: float = 0.0):
        super().__init__(name, (p, n))
        if inductance <= 0.0:
            raise NetlistError(f"inductor {name!r}: inductance must be > 0")
        self.inductance = float(inductance)
        self.i0 = float(i0)
        self._v_prev = 0.0

    def reset(self) -> None:
        """Clear companion-model history (start of a new transient)."""
        self._v_prev = 0.0

    def n_extras(self) -> int:
        return 1

    def initial_extras(self) -> List[float]:
        return [self.i0]

    def stamp(self, st: Stamps) -> None:
        p, n = self.node_idx
        (k,) = self.extra_idx
        # KCL: branch current enters p, leaves n.
        st.add_G(p, k, 1.0)
        st.add_G(n, k, -1.0)
        if st.mode == MODE_DC:
            # Ideal short: v_p - v_n = 0.
            st.add_G(k, p, 1.0)
            st.add_G(k, n, -1.0)
            return
        L = self.inductance
        if st.method == METHOD_TRAP:
            # v = L di/dt -> v_n + v_prev = (2L/dt)(i_n - i_prev)
            req = 2.0 * L / st.dt
            veq = req * st.v_prev(k) + self._v_prev
        else:
            req = L / st.dt
            veq = req * st.v_prev(k)
        st.add_G(k, p, 1.0)
        st.add_G(k, n, -1.0)
        st.add_G(k, k, -req)
        st.add_b(k, -veq)

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n = self.node_idx
        (k,) = self.extra_idx
        if p >= 0:
            G[p, k] += 1.0
        if n >= 0:
            G[n, k] += -1.0
        if p >= 0:
            G[k, p] += 1.0
        if n >= 0:
            G[k, n] += -1.0
        G[k, k] += -1j * omega * self.inductance

    def update_state(self, x, x_prev, dt, method) -> None:
        p, n = self.node_idx
        vp = 0.0 if p < 0 else x[p]
        vn = 0.0 if n < 0 else x[n]
        self._v_prev = float(vp - vn)

    def current(self, x: np.ndarray) -> float:
        """Inductor branch current for a given solution vector."""
        (k,) = self.extra_idx
        return float(x[k])


def _ac_conductance(G: np.ndarray, p: int, n: int, y: complex) -> None:
    """Stamp an admittance into a complex AC matrix, skipping ground."""
    if p >= 0:
        G[p, p] += y
    if n >= 0:
        G[n, n] += y
    if p >= 0 and n >= 0:
        G[p, n] -= y
        G[n, p] -= y
