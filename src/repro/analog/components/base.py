"""Component base class and the stamping context.

Every analogue element implements :class:`Component`: it names its terminal
nodes, may claim *extra* unknowns (branch currents, mechanical states) and
stamps its contribution into the MNA system each Newton iteration.

The stamp context :class:`Stamps` exposes:

- ``G`` / ``b`` -- the (dense) Jacobian matrix and right-hand side,
- ``x`` -- the current Newton iterate,
- ``x_prev`` -- the accepted solution of the previous timestep,
- ``t`` / ``dt`` -- current time and step size,
- ``mode`` -- ``"dc"`` (capacitors open, inductors short) or ``"tran"``,
- ``method`` -- ``"be"`` (backward Euler) or ``"trap"`` (trapezoidal).

Index ``-1`` denotes the ground node; all stamping helpers silently skip it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NetlistError

MODE_DC = "dc"
MODE_TRAN = "tran"
METHOD_BE = "be"
METHOD_TRAP = "trap"


class Stamps:
    """Mutable MNA assembly buffers handed to every component's ``stamp``."""

    def __init__(
        self,
        size: int,
        x: np.ndarray,
        x_prev: np.ndarray,
        t: float,
        dt: float,
        mode: str = MODE_TRAN,
        method: str = METHOD_TRAP,
        gmin: float = 0.0,
    ):
        self.G = np.zeros((size, size))
        self.b = np.zeros(size)
        self.x = x
        self.x_prev = x_prev
        self.t = t
        self.dt = dt
        self.mode = mode
        self.method = method
        self.gmin = gmin

    # -- helpers ----------------------------------------------------------

    def v(self, index: int) -> float:
        """Voltage (or extra unknown) of the current iterate; ground is 0 V."""
        return 0.0 if index < 0 else float(self.x[index])

    def v_prev(self, index: int) -> float:
        """Previous-timestep value of an unknown; ground is 0 V."""
        return 0.0 if index < 0 else float(self.x_prev[index])

    def add_G(self, row: int, col: int, value: float) -> None:
        """Accumulate into the Jacobian, skipping ground rows/columns."""
        if row >= 0 and col >= 0:
            self.G[row, col] += value

    def add_b(self, row: int, value: float) -> None:
        """Accumulate into the right-hand side, skipping the ground row."""
        if row >= 0:
            self.b[row] += value

    def stamp_conductance(self, p: int, n: int, g: float) -> None:
        """Stamp a two-terminal conductance ``g`` between nodes ``p`` and ``n``."""
        self.add_G(p, p, g)
        self.add_G(n, n, g)
        self.add_G(p, n, -g)
        self.add_G(n, p, -g)

    def stamp_current_source(self, p: int, n: int, current: float) -> None:
        """Stamp an independent current flowing from node ``p`` to node ``n``."""
        self.add_b(p, -current)
        self.add_b(n, current)


class Component:
    """Base class for all analogue elements.

    Subclasses set ``self._nodes`` (terminal node names, in order) and
    override :meth:`stamp`.  Elements with branch currents or internal
    states override :meth:`n_extras` and use the indices handed to
    :meth:`bind`.
    """

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise NetlistError("component name must be non-empty")
        self.name = name
        self._nodes = tuple(nodes)
        self.node_idx: Tuple[int, ...] = ()
        self.extra_idx: Tuple[int, ...] = ()

    # -- netlist interface --------------------------------------------------

    def node_names(self) -> Tuple[str, ...]:
        """Terminal node names in declaration order."""
        return self._nodes

    def n_extras(self) -> int:
        """Number of extra unknowns (branch currents / internal states)."""
        return 0

    def bind(self, node_idx: Sequence[int], extra_idx: Sequence[int]) -> None:
        """Receive the matrix indices assigned by the MNA system."""
        self.node_idx = tuple(node_idx)
        self.extra_idx = tuple(extra_idx)

    # -- numerical interface --------------------------------------------------

    def stamp(self, st: Stamps) -> None:
        """Accumulate this element's contribution into ``st``."""
        raise NotImplementedError

    def stamp_ac(self, G: np.ndarray, b: np.ndarray, omega: float, x_op: np.ndarray) -> None:
        """Stamp the small-signal (complex) system about operating point ``x_op``.

        The default is a zero contribution, correct for elements that are
        purely resistive *and* already captured by their DC linearisation --
        subclasses with reactive or source behaviour override this.
        """

    def is_nonlinear(self) -> bool:
        """Whether Newton iteration must re-stamp this element each iterate."""
        return False

    def limit_update(self, x_new: np.ndarray, x_old: np.ndarray) -> None:
        """Damp the Newton update in place (junction limiting).  Optional."""

    def update_state(self, x: np.ndarray, x_prev: np.ndarray, dt: float, method: str) -> None:
        """Commit internal companion-model state after an accepted timestep."""

    def initial_extras(self) -> List[float]:
        """Initial values for this component's extra unknowns."""
        return [0.0] * self.n_extras()

    def __repr__(self) -> str:  # pragma: no cover
        nodes = ",".join(self._nodes)
        return f"{type(self).__name__}({self.name!r}, nodes=[{nodes}])"
