"""Controlled sources: VCVS, VCCS, CCVS, CCCS.

The four classic dependent sources complete the linear component library.
The system model itself only needs them indirectly (the electromechanical
generator is in effect a pair of controlled sources), but behavioural
modelling of amplifiers, regulators and sensor front-ends -- natural
extensions around the paper's power path -- is impossible without them.

Conventions: controlling voltage is ``v(cp) - v(cn)``; controlling current
is the branch current of a named :class:`VoltageSource`-like element (one
that owns a branch-current unknown).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analog.components.base import Component, Stamps
from repro.errors import NetlistError


class Vcvs(Component):
    """Voltage-controlled voltage source: ``v(p,n) = gain * v(cp,cn)``."""

    def __init__(self, name: str, p: str, n: str, cp: str, cn: str, gain: float):
        super().__init__(name, (p, n, cp, cn))
        self.gain = float(gain)

    def n_extras(self) -> int:
        return 1

    def stamp(self, st: Stamps) -> None:
        p, n, cp, cn = self.node_idx
        (k,) = self.extra_idx
        st.add_G(p, k, 1.0)
        st.add_G(n, k, -1.0)
        # Branch equation: v_p - v_n - gain*(v_cp - v_cn) = 0
        st.add_G(k, p, 1.0)
        st.add_G(k, n, -1.0)
        st.add_G(k, cp, -self.gain)
        st.add_G(k, cn, self.gain)

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n, cp, cn = self.node_idx
        (k,) = self.extra_idx
        for row, col, val in (
            (p, k, 1.0),
            (n, k, -1.0),
            (k, p, 1.0),
            (k, n, -1.0),
            (k, cp, -self.gain),
            (k, cn, self.gain),
        ):
            if row >= 0 and col >= 0:
                G[row, col] += val

    def current(self, x: np.ndarray) -> float:
        """Branch current through the controlled source (p -> n)."""
        return float(x[self.extra_idx[0]])


class Vccs(Component):
    """Voltage-controlled current source: ``i(p->n) = gm * v(cp,cn)``."""

    def __init__(self, name: str, p: str, n: str, cp: str, cn: str, gm: float):
        super().__init__(name, (p, n, cp, cn))
        self.gm = float(gm)

    def stamp(self, st: Stamps) -> None:
        p, n, cp, cn = self.node_idx
        st.add_G(p, cp, self.gm)
        st.add_G(p, cn, -self.gm)
        st.add_G(n, cp, -self.gm)
        st.add_G(n, cn, self.gm)

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n, cp, cn = self.node_idx
        for row, col, val in (
            (p, cp, self.gm),
            (p, cn, -self.gm),
            (n, cp, -self.gm),
            (n, cn, self.gm),
        ):
            if row >= 0 and col >= 0:
                G[row, col] += val


class Ccvs(Component):
    """Current-controlled voltage source: ``v(p,n) = r * i(control)``.

    ``control`` must be a component owning a branch-current unknown
    (a :class:`~repro.analog.components.sources.VoltageSource`, an
    :class:`~repro.analog.components.passives.Inductor`, another
    controlled voltage source...).
    """

    def __init__(self, name: str, p: str, n: str, control: Component, r: float):
        super().__init__(name, (p, n))
        if control.n_extras() < 1:
            raise NetlistError(
                f"CCVS {name!r}: control element {control.name!r} has no "
                "branch-current unknown"
            )
        self.control = control
        self.r = float(r)

    def n_extras(self) -> int:
        return 1

    def stamp(self, st: Stamps) -> None:
        p, n = self.node_idx
        (k,) = self.extra_idx
        kc = self.control.extra_idx[0]
        st.add_G(p, k, 1.0)
        st.add_G(n, k, -1.0)
        st.add_G(k, p, 1.0)
        st.add_G(k, n, -1.0)
        st.add_G(k, kc, -self.r)

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n = self.node_idx
        (k,) = self.extra_idx
        kc = self.control.extra_idx[0]
        for row, col, val in (
            (p, k, 1.0),
            (n, k, -1.0),
            (k, p, 1.0),
            (k, n, -1.0),
            (k, kc, -self.r),
        ):
            if row >= 0 and col >= 0:
                G[row, col] += val


class Cccs(Component):
    """Current-controlled current source: ``i(p->n) = gain * i(control)``."""

    def __init__(self, name: str, p: str, n: str, control: Component, gain: float):
        super().__init__(name, (p, n))
        if control.n_extras() < 1:
            raise NetlistError(
                f"CCCS {name!r}: control element {control.name!r} has no "
                "branch-current unknown"
            )
        self.control = control
        self.gain = float(gain)

    def stamp(self, st: Stamps) -> None:
        p, n = self.node_idx
        kc = self.control.extra_idx[0]
        st.add_G(p, kc, self.gain)
        st.add_G(n, kc, -self.gain)

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n = self.node_idx
        kc = self.control.extra_idx[0]
        if p >= 0:
            G[p, kc] += self.gain
        if n >= 0:
            G[n, kc] += -self.gain
