"""Analogue component library."""

from repro.analog.components.base import Component, Stamps
from repro.analog.components.controlled import Cccs, Ccvs, Vccs, Vcvs
from repro.analog.components.diode import Diode
from repro.analog.components.passives import (
    Capacitor,
    Inductor,
    Resistor,
    Supercapacitor,
)
from repro.analog.components.sources import (
    CurrentSource,
    VoltageSource,
    pulse,
    sine,
    step,
)
from repro.analog.components.switch import Switch, VariableResistor

__all__ = [
    "Capacitor",
    "Cccs",
    "Ccvs",
    "Component",
    "CurrentSource",
    "Diode",
    "Inductor",
    "Resistor",
    "Stamps",
    "Supercapacitor",
    "Switch",
    "VariableResistor",
    "Vccs",
    "Vcvs",
    "VoltageSource",
    "pulse",
    "sine",
    "step",
]
