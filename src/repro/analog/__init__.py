"""Nonlinear analogue circuit solver (the SystemC-A analogue core substitute).

A small but real circuit simulator:

- :mod:`repro.analog.netlist` -- circuit container and node bookkeeping.
- :mod:`repro.analog.components` -- R, C, L, diode, switches, independent
  sources, and the component base class third parties (e.g. the harvester's
  electromechanical generator) extend.
- :mod:`repro.analog.mna` -- modified nodal analysis stamping.
- :mod:`repro.analog.newton` -- Newton-Raphson with junction limiting.
- :mod:`repro.analog.dc` -- DC operating point with gmin stepping.
- :mod:`repro.analog.transient` -- adaptive trapezoidal/backward-Euler
  transient analysis with local-truncation-error step control.
- :mod:`repro.analog.ac` -- small-signal AC analysis about an operating
  point (used to extract harvester frequency responses).
- :mod:`repro.analog.cosim` -- lockstep bridge to the event-driven kernel
  with threshold-crossing detection.
"""

from repro.analog.ac import AcResult, ac_analysis
from repro.analog.cosim import CircuitHook, ThresholdWatcher
from repro.analog.dc import operating_point
from repro.analog.mna import MnaSystem
from repro.analog.netlist import Circuit
from repro.analog.transient import TransientResult, TransientSolver

__all__ = [
    "AcResult",
    "ac_analysis",
    "Circuit",
    "CircuitHook",
    "MnaSystem",
    "operating_point",
    "ThresholdWatcher",
    "TransientResult",
    "TransientSolver",
]
