"""Lockstep bridge between the analogue solver and the event-driven kernel.

:class:`CircuitHook` implements :class:`repro.sim.kernel.AnalogHook`: the
kernel asks it to advance the circuit between digital events.  Digital
processes observe analogue quantities through :class:`ThresholdWatcher`
objects, which stop the analogue integration at (interpolated) crossing
times and notify a :class:`repro.sim.process.NamedEvent` -- this is how the
supercapacitor-voltage comparisons of the paper's Algorithm 1 and the node
policy thresholds (2.6 / 2.7 / 2.8 V) become digital events.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.analog.components.base import METHOD_TRAP, MODE_TRAN
from repro.analog.mna import MnaSystem
from repro.analog.newton import NewtonOptions, solve_newton
from repro.errors import ConvergenceError, SimulationError
from repro.sim.kernel import AnalogHook, Simulator
from repro.sim.process import NamedEvent
from repro.sim.trace import TraceSet


class ThresholdWatcher:
    """Watches ``value(x) - threshold`` for sign changes during integration."""

    def __init__(
        self,
        name: str,
        probe: Callable[[np.ndarray], float],
        threshold: float,
        event: Optional[NamedEvent] = None,
        direction: str = "both",
    ):
        if direction not in ("rising", "falling", "both"):
            raise SimulationError(f"bad watcher direction {direction!r}")
        self.name = name
        self.probe = probe
        self.threshold = threshold
        self.event = event
        self.direction = direction
        self.last_above: Optional[bool] = None
        self.crossings: List[float] = []

    def check(self, t: float, x: np.ndarray) -> bool:
        """Record state; return ``True`` when a watched crossing occurred."""
        above = self.probe(x) > self.threshold
        fired = False
        if self.last_above is not None and above != self.last_above:
            rising = above
            if (
                self.direction == "both"
                or (self.direction == "rising" and rising)
                or (self.direction == "falling" and not rising)
            ):
                self.crossings.append(t)
                fired = True
        self.last_above = above
        return fired


class CircuitHook(AnalogHook):
    """Advance a circuit in lockstep with a :class:`Simulator`.

    Parameters
    ----------
    dt:
        Internal integration step (fixed; the co-simulation use cases of
        this library run at fast oscillation periods where a fixed step at
        ~100 points per vibration cycle is both accurate and predictable).
    record:
        Node names to trace continuously (``traces`` attribute).
    """

    def __init__(
        self,
        system: MnaSystem,
        dt: float,
        method: str = METHOD_TRAP,
        newton: Optional[NewtonOptions] = None,
        record: Sequence[str] = (),
    ):
        if dt <= 0.0:
            raise SimulationError("CircuitHook: dt must be positive")
        self.system = system
        self.dt = dt
        self.method = method
        self.newton = newton or NewtonOptions()
        self.watchers: List[ThresholdWatcher] = []
        self.traces = TraceSet()
        self._record_nodes = list(record)
        self.x = system.initial_vector()
        system.seed_initial_conditions(self.x)
        system.reset_states()
        self.t = 0.0
        self._primed = False
        self._kernel = None

    def bind_kernel(self, simulator) -> None:
        """Receive the kernel (called by ``Simulator.attach_analog``)."""
        self._kernel = simulator

    def watch(
        self,
        name: str,
        node: str,
        threshold: float,
        event: Optional[NamedEvent] = None,
        direction: str = "both",
    ) -> ThresholdWatcher:
        """Watch a node voltage against ``threshold``; returns the watcher."""
        idx = self.system.node_index(node)

        def probe(x: np.ndarray, _idx=idx) -> float:
            return 0.0 if _idx < 0 else float(x[_idx])

        watcher = ThresholdWatcher(name, probe, threshold, event=event, direction=direction)
        self.watchers.append(watcher)
        return watcher

    def voltage(self, node: str) -> float:
        """Present voltage of ``node`` (digital processes read this)."""
        return self.system.voltage(self.x, node)

    # -- AnalogHook interface ------------------------------------------------

    def advance(self, t_from: float, t_to: float) -> float:
        if not self._primed:
            self._prime(t_from)
        t = self.t
        while t < t_to - 1e-15:
            step = min(self.dt, t_to - t)
            x_new = self._step(t + step, step)
            self.system.update_states(x_new, self.x, step, self.method)
            self.x = x_new
            t += step
            self.t = t
            self._trace(t)
            fired = False
            for watcher in self.watchers:
                if watcher.check(t, self.x):
                    if watcher.event is not None:
                        # Fire once the kernel clock reaches the crossing
                        # (notifying mid-advance would wake processes at a
                        # stale `sim.now`).
                        if self._kernel is not None:
                            self._kernel.schedule_at(t, watcher.event.notify)
                        else:
                            watcher.event.notify()
                    fired = True
            if fired:
                return t
        self.t = t_to
        return t_to

    # -- internals --------------------------------------------------------

    def _prime(self, t0: float) -> None:
        self.t = t0
        self._trace(t0)
        for watcher in self.watchers:
            watcher.check(t0, self.x)
        self._primed = True

    def _step(self, t_new: float, dt: float) -> np.ndarray:
        try:
            return solve_newton(
                self.system,
                self.x,
                self.x,
                t_new,
                dt,
                mode=MODE_TRAN,
                method=self.method,
                options=self.newton,
            )
        except ConvergenceError:
            # One level of step halving is enough for the mildly stiff
            # rectifier circuits used here; deeper recursion would hide
            # genuine modelling errors.
            half = dt / 2.0
            x_mid = solve_newton(
                self.system, self.x, self.x, t_new - half, half,
                mode=MODE_TRAN, method=self.method, options=self.newton,
            )
            self.system.update_states(x_mid, self.x, half, self.method)
            self.x = x_mid
            return solve_newton(
                self.system, x_mid, x_mid, t_new, half,
                mode=MODE_TRAN, method=self.method, options=self.newton,
            )

    def _trace(self, t: float) -> None:
        for node in self._record_nodes:
            self.traces.trace(f"v({node})").append(t, self.voltage(node))
