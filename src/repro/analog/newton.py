"""Newton-Raphson solution of the stamped MNA system.

Convergence follows SPICE practice: the iterate is accepted when every
unknown moves by less than ``abstol + reltol * |x|`` between iterations.
Nonlinear components may damp the raw update via ``limit_update`` (junction
limiting), which is what makes exponential diodes tractable from poor
starting points.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analog.components.base import METHOD_TRAP, MODE_TRAN
from repro.analog.mna import MnaSystem
from repro.errors import ConvergenceError, SingularMatrixError


class NewtonOptions:
    """Tolerances and iteration limits for the nonlinear solve."""

    def __init__(
        self,
        abstol: float = 1e-9,
        reltol: float = 1e-6,
        max_iterations: int = 100,
        gmin: float = 1e-12,
    ):
        self.abstol = abstol
        self.reltol = reltol
        self.max_iterations = max_iterations
        self.gmin = gmin


def solve_newton(
    system: MnaSystem,
    x0: np.ndarray,
    x_prev: np.ndarray,
    t: float,
    dt: float,
    mode: str = MODE_TRAN,
    method: str = METHOD_TRAP,
    options: Optional[NewtonOptions] = None,
    gmin: Optional[float] = None,
) -> np.ndarray:
    """Solve the (possibly nonlinear) MNA system at one time point.

    Parameters
    ----------
    x0:
        Starting iterate (typically the previous solution).
    x_prev:
        Accepted solution of the previous timestep (companion models).
    gmin:
        Override the options' minimum conductance (used by gmin stepping).

    Returns
    -------
    numpy.ndarray
        The converged solution vector.

    Raises
    ------
    ConvergenceError
        If the iteration limit is exhausted.
    SingularMatrixError
        If the Jacobian is singular (floating subcircuit etc.).
    """
    opts = options or NewtonOptions()
    if opts.max_iterations < 1:
        raise ConvergenceError("Newton needs at least one iteration", 0)
    g = opts.gmin if gmin is None else gmin
    x = x0.copy()

    if not system.nonlinear:
        st = system.assemble(x, x_prev, t, dt, mode=mode, method=method, gmin=g)
        return _linear_solve(st.G, st.b)

    for iteration in range(opts.max_iterations):
        st = system.assemble(x, x_prev, t, dt, mode=mode, method=method, gmin=g)
        x_new = _linear_solve(st.G, st.b)
        for comp in system.nonlinear:
            comp.limit_update(x_new, x)
        delta = np.abs(x_new - x)
        bound = opts.abstol + opts.reltol * np.maximum(np.abs(x_new), np.abs(x))
        x = x_new
        if np.all(delta <= bound):
            return x
    raise ConvergenceError(
        f"Newton iteration failed to converge at t={t:.6g} (dt={dt:.3g})",
        iterations=opts.max_iterations,
        residual=float(np.max(delta)),
    )


def _linear_solve(G: np.ndarray, b: np.ndarray) -> np.ndarray:
    try:
        x = np.linalg.solve(G, b)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError(f"MNA matrix is singular: {exc}") from exc
    if not np.all(np.isfinite(x)):
        raise SingularMatrixError("MNA solution contains non-finite values")
    return x
