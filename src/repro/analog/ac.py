"""Small-signal AC analysis.

Linearises the circuit about a DC operating point and solves the complex
system ``(G + jB(omega)) x = b_ac`` over a frequency sweep.  The harvester
package uses this to extract the microgenerator's electrical frequency
response and to validate the analytic envelope model against the detailed
one.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analog.dc import operating_point
from repro.analog.mna import MnaSystem
from repro.errors import SingularMatrixError


class AcResult:
    """Complex node responses over a frequency sweep."""

    def __init__(self, system: MnaSystem, frequencies: np.ndarray, solutions: np.ndarray):
        self.system = system
        #: Sweep frequencies in Hz.
        self.frequencies = frequencies
        #: Complex solution matrix, shape (n_freq, n_unknowns).
        self.solutions = solutions

    def voltage(self, node: str) -> np.ndarray:
        """Complex voltage phasor of ``node`` across the sweep."""
        idx = self.system.node_index(node)
        if idx < 0:
            return np.zeros(len(self.frequencies), dtype=complex)
        return self.solutions[:, idx]

    def magnitude(self, node: str) -> np.ndarray:
        """``|V(node)|`` across the sweep."""
        return np.abs(self.voltage(node))

    def phase(self, node: str) -> np.ndarray:
        """Phase of ``V(node)`` in radians across the sweep."""
        return np.angle(self.voltage(node))


def ac_analysis(
    system: MnaSystem,
    frequencies: Sequence[float],
    x_op: Optional[np.ndarray] = None,
) -> AcResult:
    """Run an AC sweep.

    Parameters
    ----------
    frequencies:
        Sweep points in Hz.
    x_op:
        Operating point to linearise about; computed via
        :func:`repro.analog.dc.operating_point` when omitted.
    """
    if x_op is None:
        x_op = operating_point(system)
    freqs = np.asarray(list(frequencies), dtype=float)
    n = system.size
    solutions = np.zeros((len(freqs), n), dtype=complex)
    for i, f in enumerate(freqs):
        omega = 2.0 * np.pi * f
        G = np.zeros((n, n), dtype=complex)
        b = np.zeros(n, dtype=complex)
        for comp in system.circuit.components:
            comp.stamp_ac(G, b, omega, x_op)
        try:
            solutions[i] = np.linalg.solve(G, b)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"AC matrix singular at {f:.6g} Hz: {exc}"
            ) from exc
    return AcResult(system, freqs, solutions)
