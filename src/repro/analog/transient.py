"""Transient analysis with adaptive step control.

The integrator is trapezoidal by default (backward Euler on request), with
two adaptation mechanisms:

- **Newton rescue** -- if a step fails to converge the step size is halved
  and retried (down to ``dt_min``).
- **LTE control** -- the local truncation error is estimated from the
  difference between the accepted solution and a linear predictor through
  the two previous points (the classic SPICE heuristic).  Steps whose
  estimate exceeds the tolerance are redone with a smaller ``dt``; smooth
  stretches let ``dt`` grow back towards ``dt_max``.

Results are recorded into :class:`repro.sim.trace.TraceSet` so that node
waveforms integrate directly with the figure benches.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.analog.components.base import METHOD_BE, METHOD_TRAP, MODE_TRAN
from repro.analog.mna import MnaSystem
from repro.analog.newton import NewtonOptions, solve_newton
from repro.errors import ConvergenceError, SimulationError
from repro.sim.trace import TraceSet


class TransientResult:
    """Waveforms and bookkeeping produced by a transient run."""

    def __init__(self, system: MnaSystem):
        self.system = system
        self.traces = TraceSet()
        self.steps_taken = 0
        self.steps_rejected = 0
        self.final_state: Optional[np.ndarray] = None
        self.final_time = 0.0

    def voltage_trace(self, node: str):
        """Trace of a node voltage (raises ``KeyError`` if not recorded)."""
        return self.traces[f"v({node})"]


class TransientSolver:
    """Adaptive transient integrator over an :class:`MnaSystem`."""

    def __init__(
        self,
        system: MnaSystem,
        method: str = METHOD_TRAP,
        newton: Optional[NewtonOptions] = None,
        lte_tol: float = 1e-3,
        dt_min: float = 1e-9,
        dt_grow: float = 1.5,
        dt_shrink: float = 0.5,
    ):
        if method not in (METHOD_TRAP, METHOD_BE):
            raise SimulationError(f"unknown integration method {method!r}")
        self.system = system
        self.method = method
        self.newton = newton or NewtonOptions()
        self.lte_tol = lte_tol
        self.dt_min = dt_min
        self.dt_grow = dt_grow
        self.dt_shrink = dt_shrink

    def run(
        self,
        t_end: float,
        dt: float,
        record: Optional[Sequence[str]] = None,
        x0: Optional[np.ndarray] = None,
        t_start: float = 0.0,
        on_step: Optional[Callable[[float, np.ndarray], None]] = None,
        adaptive: bool = True,
    ) -> TransientResult:
        """Integrate from ``t_start`` to ``t_end``.

        Parameters
        ----------
        dt:
            Initial (and maximum) step size.
        record:
            Node names whose voltages to trace; defaults to every node.
        x0:
            Starting state; defaults to initial conditions (``v0`` seeds).
        on_step:
            Callback ``f(t, x)`` after every accepted step -- the hook the
            digital side uses to observe analogue quantities.
        adaptive:
            Disable to force fixed stepping (useful in convergence tests).
        """
        if t_end <= t_start:
            raise SimulationError("transient: t_end must exceed t_start")
        if dt <= 0.0:
            raise SimulationError("transient: dt must be positive")
        system = self.system
        system.reset_states()
        if x0 is None:
            x = system.initial_vector()
            system.seed_initial_conditions(x)
        else:
            x = x0.copy()

        nodes = list(record) if record is not None else list(system.node_names)
        result = TransientResult(system)
        self._record(result, nodes, t_start, x)

        dt_max = dt
        step = dt
        t = t_start
        x_prev = x.copy()
        x_prev2: Optional[np.ndarray] = None
        t_prev = t
        t_prev2: Optional[float] = None

        while t < t_end - 1e-15:
            step = min(step, t_end - t)
            accepted = False
            while not accepted:
                try:
                    x_new = solve_newton(
                        system,
                        x,
                        x,
                        t + step,
                        step,
                        mode=MODE_TRAN,
                        method=self.method,
                        options=self.newton,
                    )
                except ConvergenceError:
                    result.steps_rejected += 1
                    if step <= self.dt_min * (1.0 + 1e-9):
                        raise
                    step = max(step * self.dt_shrink, self.dt_min)
                    continue

                if adaptive and x_prev2 is not None:
                    lte = self._lte_estimate(
                        x_new, x, x_prev2, t + step, t, t_prev2
                    )
                    if lte > self.lte_tol and step > self.dt_min * (1.0 + 1e-9):
                        result.steps_rejected += 1
                        step = max(step * self.dt_shrink, self.dt_min)
                        continue
                accepted = True

            system.update_states(x_new, x, step, self.method)
            x_prev2, t_prev2 = x.copy(), t
            x, t = x_new, t + step
            result.steps_taken += 1
            self._record(result, nodes, t, x)
            if on_step is not None:
                on_step(t, x)
            if adaptive:
                step = min(step * self.dt_grow, dt_max)

        result.final_state = x
        result.final_time = t
        return result

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _lte_estimate(
        x_new: np.ndarray,
        x_cur: np.ndarray,
        x_old: np.ndarray,
        t_new: float,
        t_cur: float,
        t_old: float,
    ) -> float:
        """Normalised distance between the solution and a linear predictor."""
        denom = t_cur - t_old
        if denom <= 0.0:
            return 0.0
        slope = (x_cur - x_old) / denom
        predicted = x_cur + slope * (t_new - t_cur)
        scale = 1.0 + np.maximum(np.abs(x_new), np.abs(x_cur))
        return float(np.max(np.abs(x_new - predicted) / scale))

    @staticmethod
    def _record(result: TransientResult, nodes: Sequence[str], t: float, x: np.ndarray) -> None:
        for node in nodes:
            result.traces.trace(f"v({node})").append(
                t, result.system.voltage(x, node)
            )
