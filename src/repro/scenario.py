"""Declarative, serialisable simulation scenarios.

A :class:`Scenario` is the library's unit of work: one fully specified
node simulation (firmware configuration, physical-system overrides,
excitation profile, horizon, seed, backend) as an immutable value object.
Because scenarios are plain data they can be

- hashed (the :class:`~repro.core.batch.BatchRunner` cache key),
- pickled (fanned out to ``concurrent.futures`` workers),
- round-tripped through JSON (``repro-wsn run-scenario FILE.json``).

``run(scenario)`` (:mod:`repro.backends`) executes one regardless of
backend fidelity.  A small library of named scenarios
(:func:`named_scenario`) covers the paper's evaluation conditions plus
the stress cases used by examples and benches.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Union

from repro.errors import ConfigError, DesignError
from repro.system.components import SystemParts, paper_system
from repro.system.config import ORIGINAL_DESIGN, SystemConfig
from repro.system.vibration import VibrationProfile

#: Version stamp written into every scenario JSON payload.
SCENARIO_SCHEMA = 1

#: Option values that survive a JSON round-trip unchanged.
_JSON_SCALARS = (bool, int, float, str, type(None))


@dataclass(frozen=True)
class PartsSpec:
    """Declarative overrides for :func:`repro.system.components.paper_system`.

    A scenario cannot carry a live :class:`SystemParts` (parts are mutable
    and stateful -- the actuator moves during a run), so it carries this
    spec instead and every backend builds *fresh* parts per run.  The
    defaults reproduce ``paper_system()`` exactly.
    """

    v_init: float = 2.65
    initial_frequency: float = 64.0
    initial_position: Optional[int] = None

    def __post_init__(self) -> None:
        # Normalise numpy scalars etc. so payloads stay JSON-serialisable.
        object.__setattr__(self, "v_init", float(self.v_init))
        object.__setattr__(self, "initial_frequency", float(self.initial_frequency))
        if self.initial_position is not None:
            object.__setattr__(self, "initial_position", int(self.initial_position))
        if self.v_init <= 0.0:
            raise ConfigError("initial storage voltage must be > 0")
        if self.initial_frequency <= 0.0:
            raise ConfigError("initial frequency must be > 0")

    def build(self) -> SystemParts:
        """Assemble a fresh calibrated system with these overrides."""
        return paper_system(
            v_init=self.v_init,
            initial_position=self.initial_position,
            initial_frequency=self.initial_frequency,
        )

    def to_payload(self) -> dict:
        return {
            "v_init": self.v_init,
            "initial_frequency": self.initial_frequency,
            "initial_position": self.initial_position,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "PartsSpec":
        pos = payload.get("initial_position")
        return cls(
            v_init=float(payload.get("v_init", 2.65)),
            initial_frequency=float(payload.get("initial_frequency", 64.0)),
            initial_position=None if pos is None else int(pos),
        )


@dataclass(frozen=True)
class Scenario:
    """One fully specified simulation run.

    Parameters
    ----------
    config:
        The firmware operating point (Table V parameters).
    parts:
        Physical-system overrides, or ``None`` for the calibrated default
        system.
    profile:
        Excitation profile, or ``None`` for the backend's default (the
        paper profile for the envelope backend, constant 64 Hz for the
        detailed backend -- matching each simulator's constructor).
    horizon:
        Simulated seconds.
    seed:
        Measurement-noise seed.  ``None`` asks the
        :class:`~repro.core.batch.BatchRunner` to derive a deterministic
        per-scenario seed from its own base seed; direct ``run()`` treats
        ``None`` as an unseeded (non-reproducible) stream, exactly like
        the simulator constructors.
    backend:
        Registered backend name (``"envelope"`` or ``"detailed"``).
    options:
        Backend-specific keyword arguments (e.g. ``dt_max`` /
        ``record_traces`` for the envelope backend, ``points_per_cycle``
        for the detailed one).  Values must be JSON scalars.
    name:
        Optional label carried through reports and batch summaries.
    """

    config: SystemConfig = ORIGINAL_DESIGN
    parts: Optional[PartsSpec] = None
    profile: Optional[VibrationProfile] = None
    horizon: float = 3600.0
    seed: Optional[int] = 0
    backend: str = "envelope"
    options: Mapping[str, object] = field(default_factory=dict)
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        # Normalise numpy scalars (np.int64 seeds from rng.integers are
        # common) so hashing and JSON serialisation never trip on types,
        # and copy the options so later caller-side mutation cannot
        # change this frozen value's hash behind its back.
        object.__setattr__(self, "horizon", float(self.horizon))
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "options", dict(self.options))
        if self.horizon <= 0.0:
            raise ConfigError("scenario horizon must be positive")
        if not self.backend or not isinstance(self.backend, str):
            raise ConfigError("scenario backend must be a non-empty string")
        for key, value in self.options.items():
            if not isinstance(key, str):
                raise ConfigError("scenario option names must be strings")
            if not isinstance(value, _JSON_SCALARS):
                raise ConfigError(
                    f"scenario option {key!r} must be a JSON scalar, "
                    f"got {type(value).__name__}"
                )

    def __hash__(self) -> int:
        return hash(self.cache_key())

    # -- derived values -------------------------------------------------------

    def with_seed(self, seed: Optional[int]) -> "Scenario":
        """Copy of this scenario with a different seed."""
        return replace(self, seed=seed)

    def build_parts(self) -> Optional[SystemParts]:
        """Fresh parts for one run (``None`` = backend default)."""
        return None if self.parts is None else self.parts.build()

    def describe(self) -> str:
        """One-line human-readable summary."""
        label = f"{self.name}: " if self.name else ""
        return (
            f"{label}{self.config.describe()}, backend={self.backend}, "
            f"horizon={self.horizon:g} s, seed={self.seed}"
        )

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON dictionary (includes the schema version)."""
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "backend": self.backend,
            "config": {
                "clock_hz": self.config.clock_hz,
                "watchdog_s": self.config.watchdog_s,
                "tx_interval_s": self.config.tx_interval_s,
            },
            "parts": None if self.parts is None else self.parts.to_payload(),
            "profile": None if self.profile is None else self.profile.to_payload(),
            "horizon": self.horizon,
            "seed": self.seed,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output.

        Unversioned payloads are accepted as schema 1; unknown versions
        and non-object payloads raise :class:`~repro.errors.DesignError`.
        """
        if not isinstance(payload, Mapping):
            raise DesignError(
                f"scenario payload must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        schema = payload.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise DesignError(
                f"unsupported scenario schema {schema!r} "
                f"(this library reads schema {SCENARIO_SCHEMA})"
            )
        cfg = payload.get("config", {})
        parts = payload.get("parts")
        profile = payload.get("profile")
        seed = payload.get("seed", 0)
        return cls(
            config=SystemConfig(
                clock_hz=float(cfg.get("clock_hz", 4e6)),
                watchdog_s=float(cfg.get("watchdog_s", 320.0)),
                tx_interval_s=float(cfg.get("tx_interval_s", 5.0)),
            ),
            parts=None if parts is None else PartsSpec.from_payload(parts),
            profile=None if profile is None else VibrationProfile.from_payload(profile),
            horizon=float(payload.get("horizon", 3600.0)),
            seed=None if seed is None else int(seed),
            backend=str(payload.get("backend", "envelope")),
            options=dict(payload.get("options", {})),
            name=str(payload.get("name", "")),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DesignError(f"scenario file is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: Union[str, Path]) -> None:
        """Write the scenario to a JSON file."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Scenario":
        """Read a scenario from a JSON file."""
        return cls.from_json(Path(path).read_text())

    def cache_key(self) -> str:
        """Content hash: equal-valued scenarios share one key.

        The cosmetic ``name`` label is excluded (as it is from ``==``),
        so re-labelled copies of the same simulation dedupe and hit the
        batch cache.
        """
        payload = self.to_dict()
        del payload["name"]
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


# -- named scenario library ---------------------------------------------------


def _paper() -> Scenario:
    """The paper's section-V evaluation: 60 mg, +5 Hz every 25 minutes."""
    return Scenario(
        name="paper",
        config=ORIGINAL_DESIGN,
        profile=VibrationProfile.paper_profile(),
    )


def _bursty() -> Scenario:
    """Alternating strong/weak excitation: 120 s at 100 mg, 480 s at 20 mg."""
    from repro.units import mg_to_mps2
    from repro.system.vibration import VibrationSegment

    segments = []
    t = 0.0
    f = 64.0
    while t < 3600.0:
        segments.append(VibrationSegment(t, f, mg_to_mps2(100.0)))
        segments.append(VibrationSegment(t + 120.0, f, mg_to_mps2(20.0)))
        t += 600.0
        f += 1.0
    return Scenario(
        name="bursty",
        config=ORIGINAL_DESIGN,
        profile=VibrationProfile(segments),
    )


def _low_vibration() -> Scenario:
    """Weak constant excitation (30 mg at 64 Hz): harvest-starved node."""
    return Scenario(
        name="low-vibration",
        config=ORIGINAL_DESIGN,
        profile=VibrationProfile.constant(64.0, accel_mg=30.0),
    )


def _cold_start() -> Scenario:
    """Storage below every policy threshold: the node must charge first."""
    return Scenario(
        name="cold-start",
        config=ORIGINAL_DESIGN,
        parts=PartsSpec(v_init=2.45),
        profile=VibrationProfile.paper_profile(),
    )


def _long_horizon() -> Scenario:
    """Four hours of the paper profile (frequency keeps stepping)."""
    horizon = 4.0 * 3600.0
    return Scenario(
        name="long-horizon",
        config=ORIGINAL_DESIGN,
        profile=VibrationProfile.paper_profile(horizon=horizon),
        horizon=horizon,
    )


#: Factories for the named scenarios (each call returns a fresh value).
SCENARIO_LIBRARY: Dict[str, Callable[[], Scenario]] = {
    "paper": _paper,
    "bursty": _bursty,
    "low-vibration": _low_vibration,
    "cold-start": _cold_start,
    "long-horizon": _long_horizon,
}


def scenario_names() -> List[str]:
    """Names accepted by :func:`named_scenario` (deterministic library).

    Stochastic family names (:func:`repro.system.stochastic.family_names`)
    are *also* accepted by :func:`named_scenario` -- they resolve to the
    family's canonical instance -- but are listed separately because one
    name covers a whole distribution of scenarios.
    """
    return sorted(SCENARIO_LIBRARY)


def named_scenario(name: str) -> Scenario:
    """Instantiate a library scenario by name.

    Accepts both the deterministic :data:`SCENARIO_LIBRARY` names and the
    stochastic family names from
    :data:`repro.system.stochastic.FAMILY_LIBRARY`; a family name yields
    its canonical instance (first replicate at family seed 0), so
    ``repro-wsn run-scenario factory-floor`` works like any other name.
    """
    try:
        factory = SCENARIO_LIBRARY[name]
    except KeyError:
        from repro.system.stochastic import FAMILY_LIBRARY, named_family

        if name in FAMILY_LIBRARY:
            return named_family(name).expand(n=1, seed=0)[0]
        known = ", ".join(scenario_names())
        families = ", ".join(sorted(FAMILY_LIBRARY))
        raise ConfigError(
            f"unknown scenario {name!r} "
            f"(known: {known}; stochastic families: {families})"
        ) from None
    return factory()
