"""Waveform recording.

:class:`Trace` stores (time, value) samples of one quantity;
:class:`TraceSet` groups traces from a simulation run and exports them to
CSV for the figure-regeneration benches (Fig. 5 of the paper is produced
from such a trace of the supercapacitor voltage).
"""

from __future__ import annotations

import bisect
import io
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


class Trace:
    """Time-stamped samples of one scalar quantity.

    Samples must be appended in non-decreasing time order.  Equal-time
    appends overwrite the previous sample, which keeps step-discontinuities
    representable without zero-width artefacts.
    """

    def __init__(self, name: str):
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float, value: float) -> None:
        """Record ``value`` at ``time`` (monotone non-decreasing times)."""
        if self._times and time < self._times[-1]:
            raise SimulationError(
                f"trace {self.name!r}: time went backwards "
                f"({time!r} < {self._times[-1]!r})"
            )
        if self._times and time == self._times[-1]:
            self._values[-1] = value
            return
        self._times.append(time)
        self._values.append(value)

    @property
    def times(self) -> np.ndarray:
        """Sample times as an array."""
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array."""
        return np.asarray(self._values, dtype=float)

    def at(self, time: float) -> float:
        """Zero-order-hold lookup: value of the last sample at or before ``time``."""
        if not self._times:
            raise SimulationError(f"trace {self.name!r} is empty")
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            return self._values[0]
        return self._values[idx]

    def interp(self, time: float) -> float:
        """Linear interpolation at ``time`` (clamped at the ends)."""
        if not self._times:
            raise SimulationError(f"trace {self.name!r} is empty")
        value = float(np.interp(time, self._times, self._values))
        if not np.isfinite(value):
            # A subnormal gap between samples overflows the slope in
            # (v1-v0)/(t1-t0); a gap that small is below any meaningful
            # time resolution, so the step lookup is the honest answer
            # (and stays within the sampled value range).
            return float(self.at(time))
        return value

    def resample(self, times: Sequence[float]) -> np.ndarray:
        """Linearly interpolate the trace onto the given time grid."""
        if not self._times:
            raise SimulationError(f"trace {self.name!r} is empty")
        grid = np.asarray(times, dtype=float)
        out = np.interp(grid, self._times, self._values)
        bad = ~np.isfinite(out)
        if bad.any():
            # Same subnormal-gap overflow as interp(): fall back to the
            # zero-order-hold sample at each affected grid point.
            out[bad] = [self.at(t) for t in grid[bad]]
        return out

    def to_payload(self) -> dict:
        """Plain-JSON representation (parallel time/value lists)."""
        return {
            "times": [float(t) for t in self._times],
            "values": [float(v) for v in self._values],
        }

    @classmethod
    def from_payload(cls, name: str, payload: dict) -> "Trace":
        """Rebuild a trace from :meth:`to_payload` output."""
        times = payload.get("times", [])
        values = payload.get("values", [])
        if len(times) != len(values):
            raise SimulationError(
                f"trace {name!r} payload has {len(times)} times "
                f"but {len(values)} values"
            )
        trace = cls(name)
        for t, v in zip(times, values):
            trace.append(float(t), float(v))
        return trace

    def min(self) -> float:
        """Smallest recorded value."""
        return float(np.min(self.values))

    def max(self) -> float:
        """Largest recorded value."""
        return float(np.max(self.values))

    def mean(self) -> float:
        """Time-weighted mean value (trapezoidal; falls back to sample mean)."""
        t, v = self.times, self.values
        if len(t) < 2 or t[-1] == t[0]:
            return float(np.mean(v))
        return float(np.trapezoid(v, t) / (t[-1] - t[0]))

    def time_above(self, threshold: float) -> float:
        """Total time the (linearly interpolated) trace spends above ``threshold``."""
        t, v = self.times, self.values
        if len(t) < 2:
            return 0.0
        total = 0.0
        for i in range(len(t) - 1):
            t0, t1, v0, v1 = t[i], t[i + 1], v[i], v[i + 1]
            dt = t1 - t0
            if dt <= 0.0:
                continue
            if v0 > threshold and v1 > threshold:
                total += dt
            elif (v0 > threshold) != (v1 > threshold) and v1 != v0:
                frac_above = abs(max(v0, v1) - threshold) / abs(v1 - v0)
                total += dt * frac_above
        return total


class TraceSet:
    """A named collection of traces with shared CSV export."""

    def __init__(self) -> None:
        self._traces: Dict[str, Trace] = {}

    def trace(self, name: str) -> Trace:
        """Return the trace called ``name``, creating it on first use."""
        if name not in self._traces:
            self._traces[name] = Trace(name)
        return self._traces[name]

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def alias(self, name: str, existing: str) -> None:
        """Expose the trace called ``existing`` under ``name`` as well.

        Backends record under their native names (the MNA hook traces
        node ``"v(vdc)"``); an alias lets adapters also publish the
        canonical cross-backend name (``"v_store"``) without copying.
        """
        if existing not in self._traces:
            raise SimulationError(f"no trace named {existing!r} to alias")
        self._traces[name] = self._traces[existing]

    def __getitem__(self, name: str) -> Trace:
        return self._traces[name]

    def names(self) -> List[str]:
        """Names of all traces, sorted."""
        return sorted(self._traces)

    def to_payload(self) -> dict:
        """Plain-JSON representation of every trace.

        Aliased names (see :meth:`alias`) are stored as ``{"alias": ...}``
        references to the first name that owns the samples, so shared
        traces stay shared after a round-trip and payloads carry each
        sample list once.
        """
        payload: Dict[str, dict] = {}
        owner_by_id: Dict[int, str] = {}
        for name in self.names():
            trace = self._traces[name]
            owner = owner_by_id.get(id(trace))
            if owner is None:
                owner_by_id[id(trace)] = name
                payload[name] = trace.to_payload()
            else:
                payload[name] = {"alias": owner}
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, dict]) -> "TraceSet":
        """Rebuild a trace set from :meth:`to_payload` output."""
        traces = cls()
        aliases = []
        for name in sorted(payload):
            entry = payload[name]
            if "alias" in entry:
                aliases.append((name, entry["alias"]))
            else:
                traces._traces[name] = Trace.from_payload(name, entry)
        for name, existing in aliases:
            traces.alias(name, existing)
        return traces

    def to_csv(self, times: Sequence[float]) -> str:
        """Resample every trace onto ``times`` and render a CSV string."""
        names = self.names()
        buf = io.StringIO()
        buf.write("time," + ",".join(names) + "\n")
        columns = [self._traces[n].resample(times) for n in names]
        for i, t in enumerate(times):
            row = ",".join(f"{col[i]:.9g}" for col in columns)
            buf.write(f"{t:.9g},{row}\n")
        return buf.getvalue()
