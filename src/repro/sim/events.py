"""Time-ordered event queue for the simulation kernel.

Events are callbacks scheduled at absolute simulation times.  Ties are
broken by insertion order (FIFO at equal times), which gives deterministic
execution regardless of heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`EventQueue.schedule` and can be
    cancelled; a cancelled event stays in the heap but is skipped when it
    surfaces (lazy deletion).
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event's callback from running."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.9g}, seq={self.seq}{state})"


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion sequence)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def schedule(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its handle."""
        if time != time:  # NaN guard
            raise SimulationError("cannot schedule an event at NaN time")
        event = Event(time, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def next_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
