"""Event-driven mixed-signal simulation kernel (SystemC-A substitute).

The paper models its system in SystemC-A: digital behaviour runs as
event-driven processes while analogue parts are integrated by a continuous
solver that is advanced in lockstep between digital events.  This package
reproduces that architecture:

- :mod:`repro.sim.events` -- time-ordered event queue.
- :mod:`repro.sim.process` -- coroutine (generator) processes with
  ``Delay`` / ``WaitSignal`` / ``WaitEvent`` suspension, like SystemC's
  ``wait()``.
- :mod:`repro.sim.signal` -- typed signals with change notification and
  edge detection, like ``sc_signal``.
- :mod:`repro.sim.module` -- hierarchical modules, like ``sc_module``.
- :mod:`repro.sim.kernel` -- the scheduler; analogue solvers attach via
  :class:`repro.sim.kernel.AnalogHook` and are stepped between events.
- :mod:`repro.sim.trace` / :mod:`repro.sim.vcd` -- waveform recording.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import AnalogHook, Simulator
from repro.sim.module import Module
from repro.sim.process import Delay, Process, WaitEvent, WaitSignal
from repro.sim.signal import Signal
from repro.sim.trace import Trace, TraceSet

__all__ = [
    "AnalogHook",
    "Delay",
    "Event",
    "EventQueue",
    "Module",
    "Process",
    "Signal",
    "Simulator",
    "Trace",
    "TraceSet",
    "WaitEvent",
    "WaitSignal",
]
