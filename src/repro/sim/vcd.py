"""Minimal VCD (Value Change Dump) writer for digital signals.

Lets users inspect controller behaviour in standard waveform viewers
(GTKWave etc.).  Only the subset of VCD needed for scalar integer, real and
boolean signals is implemented.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.signal import Signal

_IDENT_ALPHABET = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short printable-ASCII identifier code for the ``index``-th variable."""
    chars = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, len(_IDENT_ALPHABET))
        chars.append(_IDENT_ALPHABET[rem])
    return "".join(chars)


class VcdWriter:
    """Collects signal changes and renders a VCD document.

    Parameters
    ----------
    timescale_seconds:
        Simulation-time quantum of one VCD tick (default 1 microsecond).
    """

    def __init__(self, timescale_seconds: float = 1e-6):
        if timescale_seconds <= 0.0:
            raise SimulationError("timescale must be positive")
        self.timescale = timescale_seconds
        self._vars: List[Tuple[str, str, str]] = []  # (name, kind, ident)
        self._changes: List[Tuple[int, str, object]] = []  # (tick, ident, value)
        self._idents: Dict[str, str] = {}
        self._sealed = False

    def watch(self, signal: Signal, sim, kind: str = "real") -> None:
        """Record every change of ``signal`` (kinds: ``real``, ``wire``, ``integer``)."""
        if kind not in ("real", "wire", "integer"):
            raise SimulationError(f"unsupported VCD var kind {kind!r}")
        ident = _identifier(len(self._vars))
        self._vars.append((signal.name, kind, ident))
        self._idents[signal.name] = ident
        self._record(sim.now if sim else 0.0, ident, signal.value)

        def _on_change(old, new, _ident=ident):
            self._record(sim.now, _ident, new)

        signal.on_change(_on_change)

    def record_value(self, time: float, name: str, value, kind: str = "real") -> None:
        """Manually record a value change for a variable not bound to a Signal."""
        if name not in self._idents:
            ident = _identifier(len(self._vars))
            self._vars.append((name, kind, ident))
            self._idents[name] = ident
        self._record(time, self._idents[name], value)

    def _record(self, time: float, ident: str, value) -> None:
        tick = int(round(time / self.timescale))
        self._changes.append((tick, ident, value))

    def render(self, date: str = "repro simulation") -> str:
        """Produce the VCD document as a string."""
        buf = io.StringIO()
        buf.write(f"$date {date} $end\n")
        buf.write("$version repro.sim.vcd $end\n")
        exponent = round(_log10(self.timescale))
        unit = {0: "s", -3: "ms", -6: "us", -9: "ns"}.get(exponent)
        if unit is None:
            unit = "s"
            scale = self.timescale
        else:
            scale = 1
        buf.write(f"$timescale {scale} {unit} $end\n")
        buf.write("$scope module top $end\n")
        for name, kind, ident in self._vars:
            width = 64 if kind in ("real", "integer") else 1
            safe = name.replace(" ", "_")
            buf.write(f"$var {kind} {width} {ident} {safe} $end\n")
        buf.write("$upscope $end\n$enddefinitions $end\n")
        last_tick: Optional[int] = None
        for tick, ident, value in sorted(self._changes, key=lambda c: c[0]):
            if tick != last_tick:
                buf.write(f"#{tick}\n")
                last_tick = tick
            buf.write(_format_change(ident, value))
        return buf.getvalue()


def _format_change(ident: str, value) -> str:
    if isinstance(value, bool):
        return f"{int(value)}{ident}\n"
    if isinstance(value, int):
        return f"b{value:b} {ident}\n"
    return f"r{float(value):.9g} {ident}\n"


def _log10(x: float) -> float:
    import math

    return math.log10(x)
