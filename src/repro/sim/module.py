"""Hierarchical modules (``sc_module`` substitute).

Modules give system models a named hierarchy: each module knows its parent,
its children and its simulator, and offers a ``process`` helper that
registers generator methods with hierarchical names (useful when tracing a
full system with dozens of processes).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.signal import Signal


class Module:
    """Base class for hierarchical simulation models.

    Subclasses typically create sub-modules and signals in ``__init__`` and
    register their behaviour with :meth:`process`.
    """

    def __init__(self, sim: Simulator, name: str, parent: Optional["Module"] = None):
        self.sim = sim
        self.name = name
        self.parent = parent
        self.children: List[Module] = []
        if parent is not None:
            parent.children.append(self)

    @property
    def full_name(self) -> str:
        """Dot-separated hierarchical name (``top.harvester.actuator``)."""
        if self.parent is None:
            return self.name
        return f"{self.parent.full_name}.{self.name}"

    def process(self, generator: Generator, name: str = "proc") -> Process:
        """Register a generator as a process named under this module."""
        return self.sim.add_process(generator, name=f"{self.full_name}.{name}")

    def signal(self, initial, name: str = "signal") -> Signal:
        """Create a signal named under this module."""
        return Signal(initial, name=f"{self.full_name}.{name}", sim=self.sim)

    def walk(self):
        """Yield this module and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.full_name!r})"
