"""Typed signals with change notification (``sc_signal`` substitute).

A :class:`Signal` holds a value; writing a *different* value wakes every
process waiting on it and invokes registered callbacks.  Writes take effect
immediately (the kernel has no delta cycles; the controller models in this
library never need them, and immediate semantics keep traces easy to read).
"""

from __future__ import annotations

from typing import Callable, Generic, Optional, TypeVar

T = TypeVar("T")


class Signal(Generic[T]):
    """A named, observable value.

    Parameters
    ----------
    initial:
        Starting value.
    name:
        Identifier used in traces and VCD dumps.
    sim:
        Owning simulator; required only when traces need timestamps or when
        callbacks must observe simulation time.
    """

    def __init__(self, initial: T, name: str = "signal", sim=None):
        self._value = initial
        self.name = name
        self._sim = sim
        self._waiters: list = []
        self._callbacks: list[Callable[[T, T], None]] = []

    # -- value access --------------------------------------------------------

    @property
    def value(self) -> T:
        """Current value."""
        return self._value

    def read(self) -> T:
        """Alias of :attr:`value` mirroring SystemC's ``sig.read()``."""
        return self._value

    def write(self, new_value: T) -> None:
        """Set the value; notify observers only if it actually changed."""
        old = self._value
        if new_value == old:
            return
        self._value = new_value
        for callback in list(self._callbacks):
            callback(old, new_value)
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume()

    def set(self, new_value: T) -> None:
        """Alias of :meth:`write`."""
        self.write(new_value)

    # -- observation ---------------------------------------------------------

    def on_change(self, callback: Callable[[T, T], None]) -> None:
        """Register ``callback(old, new)`` to run on every value change."""
        self._callbacks.append(callback)

    def posedge(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` for rising edges of a boolean/integer signal."""

        def _edge(old: T, new: T) -> None:
            if new and not old:
                callback()

        self._callbacks.append(_edge)

    def negedge(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` for falling edges of a boolean/integer signal."""

        def _edge(old: T, new: T) -> None:
            if old and not new:
                callback()

        self._callbacks.append(_edge)

    # -- kernel interface ------------------------------------------------------

    def _add_waiter(self, proc) -> None:
        self._waiters.append(proc)

    def _remove_waiter(self, proc) -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        return f"Signal({self.name!r}={self._value!r})"
