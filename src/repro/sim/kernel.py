"""The mixed-signal scheduler.

:class:`Simulator` runs event-driven (digital) processes from a time-ordered
queue.  Analogue solvers participate through the :class:`AnalogHook`
protocol: before the kernel jumps from the current time to the next event
time it asks every hook to :meth:`~AnalogHook.advance` across the gap.  A
hook may stop early -- e.g. on a threshold crossing it wants to report as a
digital event -- in which case the kernel sets the clock to the reached time
and re-enters its loop, exactly like SystemC-A's lockstep synchronisation of
``sc_a`` solver instances with the digital kernel.
"""

from __future__ import annotations

import math
from typing import Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.process import Delay, NamedEvent, Process, WaitEvent, WaitSignal
from repro.sim.signal import Signal


class AnalogHook:
    """Interface analogue solvers implement to run in lockstep with the kernel.

    Subclasses override :meth:`advance`; the default implementation is a
    no-op so purely digital simulations can mix in inert hooks.
    """

    def advance(self, t_from: float, t_to: float) -> float:
        """Integrate the analogue system from ``t_from`` to at most ``t_to``.

        Returns the time actually reached.  Returning a value smaller than
        ``t_to`` makes the kernel re-synchronise at that time (used for
        threshold crossings); the hook is then asked to continue from there.
        """
        return t_to


class Simulator:
    """Event-driven simulation kernel with attachable analogue solvers."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue = EventQueue()
        self._processes: List[Process] = []
        self._hooks: List[AnalogHook] = []
        self._running = False
        self._stopped = False

    # -- construction -----------------------------------------------------

    def add_process(self, generator: Generator, name: str = "process") -> Process:
        """Register a generator as a process; it starts at the current time."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        proc._start()
        return proc

    def attach_analog(self, hook: AnalogHook) -> None:
        """Attach an analogue solver advanced in lockstep with events.

        Hooks exposing ``bind_kernel`` receive this simulator, which lets
        them schedule notifications *at* crossing times instead of firing
        them mid-advance (when the kernel clock still shows the old time).
        """
        self._hooks.append(hook)
        bind = getattr(hook, "bind_kernel", None)
        if callable(bind):
            bind(self)

    def signal(self, initial, name: str = "signal") -> Signal:
        """Create a :class:`~repro.sim.signal.Signal` bound to this simulator."""
        return Signal(initial, name=name, sim=self)

    def event(self, name: str = "event") -> NamedEvent:
        """Create a :class:`~repro.sim.process.NamedEvent`."""
        return NamedEvent(name)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0.0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self._queue.schedule(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulated ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, current time is {self.now!r}"
            )
        return self._queue.schedule(time, callback)

    def stop(self) -> None:
        """Halt :meth:`run` after the currently executing callback returns."""
        self._stopped = True

    # -- execution ----------------------------------------------------------

    def run(self, until: float = math.inf) -> float:
        """Execute events until the queue drains or time reaches ``until``.

        Returns the final simulation time.  The clock is left at ``until``
        when the horizon is hit (even if no event sits exactly there) so
        that analogue hooks integrate the full requested span.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                t_next = self._queue.next_time()
                if t_next is None or t_next > until:
                    # Integrate analogue state up to the horizon, honouring
                    # early stops (threshold crossings may enqueue new work,
                    # or simply need the loop to resume the integration).
                    if self._advance_analog(until):
                        continue
                    self.now = max(self.now, until) if until != math.inf else self.now
                    break
                if t_next > self.now:
                    if self._advance_analog(t_next):
                        continue
                self.now = max(self.now, t_next)
                event = self._queue.pop()
                if not event.cancelled:
                    event.callback()
        finally:
            self._running = False
        return self.now

    def _advance_analog(self, t_target: float) -> bool:
        """Advance hooks to ``t_target``.

        Returns ``True`` if a hook stopped early (the kernel should
        re-examine its queue at the reached time).
        """
        if not self._hooks or t_target == math.inf or t_target <= self.now:
            if t_target != math.inf and t_target > self.now and not self._hooks:
                pass
            return False
        stopped_early = False
        reached = t_target
        for hook in self._hooks:
            t = hook.advance(self.now, reached)
            if t < reached - 1e-15:
                reached = t
                stopped_early = True
        self.now = reached
        return stopped_early

    # -- conveniences ---------------------------------------------------------

    @staticmethod
    def delay(duration: float) -> Delay:
        """Build a ``Delay`` wait request (for readability inside processes)."""
        return Delay(duration)

    @staticmethod
    def wait_signal(*signals: Signal) -> WaitSignal:
        """Build a ``WaitSignal`` wait request."""
        return WaitSignal(*signals)

    @staticmethod
    def wait_event(event: NamedEvent) -> WaitEvent:
        """Build a ``WaitEvent`` wait request."""
        return WaitEvent(event)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Simulator(now={self.now:.9g}, pending={len(self._queue)})"
