"""Coroutine processes for the simulation kernel.

A process is a Python generator that yields *wait requests*; the kernel
resumes it when the request is satisfied.  This mirrors SystemC thread
processes suspending on ``wait(...)``:

- ``yield Delay(seconds)`` -- resume after a fixed simulated delay.
- ``yield WaitSignal(sig)`` -- resume on the next value change of ``sig``.
- ``yield WaitEvent(evt)`` -- resume when the named event is notified.

A process may also ``return`` (StopIteration) to terminate.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, Union

from repro.errors import SimulationError


class Delay:
    """Wait request: suspend for ``duration`` seconds of simulated time."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0.0:
            raise SimulationError(f"negative delay: {duration!r}")
        self.duration = float(duration)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Delay({self.duration:.9g})"


class WaitSignal:
    """Wait request: suspend until any of the given signals changes value."""

    __slots__ = ("signals",)

    def __init__(self, *signals):
        if not signals:
            raise SimulationError("WaitSignal needs at least one signal")
        self.signals = signals


class WaitEvent:
    """Wait request: suspend until the given :class:`NamedEvent` is notified."""

    __slots__ = ("event",)

    def __init__(self, event: "NamedEvent"):
        self.event = event


WaitRequest = Union[Delay, WaitSignal, WaitEvent]


class NamedEvent:
    """A SystemC-style notification event processes can wait on.

    Unlike :class:`repro.sim.events.Event` (a scheduled callback), a
    ``NamedEvent`` has no intrinsic time: it fires whenever some process or
    model calls :meth:`notify`.
    """

    def __init__(self, name: str = "event"):
        self.name = name
        self._waiters: list[Process] = []

    def notify(self) -> None:
        """Wake every process currently waiting on this event."""
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume()

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover
        return f"NamedEvent({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """A running coroutine bound to a :class:`~repro.sim.kernel.Simulator`.

    Users normally create processes with
    :meth:`repro.sim.kernel.Simulator.add_process`; the class itself drives
    the generator, interprets the yielded wait requests and tracks
    completion.
    """

    def __init__(self, sim, generator: Generator, name: str = "process"):
        self._sim = sim
        self._gen = generator
        self.name = name
        self.finished = False
        self._pending_event = None  # scheduled Delay event (for cancellation)
        self._watched_signals: tuple = ()

    # -- kernel interface ---------------------------------------------------

    def _start(self) -> None:
        """Schedule the first resumption at the current simulation time."""
        self._pending_event = self._sim._queue.schedule(self._sim.now, self._resume)

    def _resume(self) -> None:
        """Advance the generator to its next wait request."""
        if self.finished:
            return
        self._detach()
        try:
            request = next(self._gen)
        except StopIteration:
            self.finished = True
            return
        self._handle(request)

    def _handle(self, request: WaitRequest) -> None:
        if isinstance(request, Delay):
            self._pending_event = self._sim._queue.schedule(
                self._sim.now + request.duration, self._resume
            )
        elif isinstance(request, WaitSignal):
            self._watched_signals = request.signals
            for sig in request.signals:
                sig._add_waiter(self)
        elif isinstance(request, WaitEvent):
            request.event._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {request!r}; expected a wait request"
            )

    def _detach(self) -> None:
        """Drop any outstanding wait registration before resuming."""
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        for sig in self._watched_signals:
            sig._remove_waiter(self)
        self._watched_signals = ()

    def kill(self) -> None:
        """Terminate the process without resuming it again."""
        self._detach()
        self.finished = True
        self._gen.close()

    def __repr__(self) -> str:  # pragma: no cover
        state = "finished" if self.finished else "active"
        return f"Process({self.name!r}, {state})"
