"""Repo-root pytest options.

``pytest_addoption`` only takes effect from a rootdir ``conftest.py``,
so the one flag shared by every bench lives here: by default the
benches under ``benchmarks/`` write their regenerated artefacts
(tables, CSV series, ``BENCH_*.json``) to a session temp directory, and
``--update-bench`` opts in to refreshing the tracked copies under
``benchmarks/results/``.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-bench",
        action="store_true",
        default=False,
        help="write bench artefacts to benchmarks/results/ (the tracked "
        "copies) instead of a session temp directory",
    )
